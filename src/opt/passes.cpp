#include "opt/passes.hpp"

#include <map>
#include <tuple>
#include <vector>

#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "interp/eval.hpp"
#include "support/diag.hpp"

namespace cgpa::opt {

using ir::BasicBlock;
using ir::Constant;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Type;
using ir::Value;

namespace {

bool isPure(const Instruction& inst) {
  return !ir::hasSideEffects(inst.opcode()) && !inst.isTerminator() &&
         inst.opcode() != Opcode::Load && inst.opcode() != Opcode::Phi &&
         inst.opcode() != Opcode::RetrieveLiveout &&
         inst.opcode() != Opcode::Call;
}

bool isFoldableOpcode(Opcode op) {
  switch (op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::SDiv:
  case Opcode::SRem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::ICmp:
  case Opcode::FCmp:
  case Opcode::Trunc:
  case Opcode::SExt:
  case Opcode::ZExt:
  case Opcode::SIToFP:
  case Opcode::FPToSI:
  case Opcode::FPExt:
  case Opcode::FPTrunc:
    return true;
  default:
    return false;
  }
}

Constant* materialize(ir::Module& module, Type type, std::uint64_t pattern) {
  if (isFloatType(type))
    return module.constFloat(type, interp::patternToDouble(type, pattern));
  return module.constInt(type, interp::patternToInt(type, pattern));
}

/// Power of two test for positive constants; returns the shift amount or
/// -1.
int log2Exact(std::int64_t value) {
  if (value <= 0 || (value & (value - 1)) != 0)
    return -1;
  int shift = 0;
  while ((value >> shift) != 1)
    ++shift;
  return shift;
}

} // namespace

int foldConstants(Function& function) {
  ir::Module& module = *function.parent();
  int folded = 0;
  for (const auto& block : function.blocks()) {
    for (int i = 0; i < block->size(); ++i) {
      Instruction* inst = block->instruction(i);
      if (!isFoldableOpcode(inst->opcode()))
        continue;
      bool allConst = true;
      for (Value* operand : inst->operands())
        allConst &= ir::isa<Constant>(operand);
      if (!allConst || inst->numOperands() == 0)
        continue;

      std::uint64_t result = 0;
      const Opcode op = inst->opcode();
      if (inst->numOperands() == 2) {
        // Guard divides by zero: leave them to trap at runtime.
        if ((op == Opcode::SDiv || op == Opcode::SRem) &&
            ir::asConstant(inst->operand(1))->intValue() == 0)
          continue;
        result = interp::evalBinary(
            op, inst->operand(0)->type(), inst->cmpPred(),
            interp::constantPattern(*ir::asConstant(inst->operand(0))),
            interp::constantPattern(*ir::asConstant(inst->operand(1))));
      } else {
        result = interp::evalCast(
            op, inst->operand(0)->type(), inst->type(),
            interp::constantPattern(*ir::asConstant(inst->operand(0))));
      }
      function.replaceAllUsesWith(inst,
                                  materialize(module, inst->type(), result));
      ++folded;
    }
  }
  return folded;
}

int reduceStrength(Function& function) {
  ir::Module& module = *function.parent();
  int reduced = 0;
  for (const auto& block : function.blocks()) {
    for (int i = 0; i < block->size(); ++i) {
      Instruction* inst = block->instruction(i);
      const Opcode op = inst->opcode();
      if (inst->numOperands() != 2 || !isIntType(inst->type()))
        continue;
      Value* lhs = inst->operand(0);
      Value* rhs = inst->operand(1);
      const Constant* rhsConst = ir::asConstant(rhs);
      const Constant* lhsConst = ir::asConstant(lhs);

      // Identities forwarding an operand.
      auto forward = [&](Value* kept) {
        function.replaceAllUsesWith(inst, kept);
        ++reduced;
      };
      if (op == Opcode::Add || op == Opcode::Or || op == Opcode::Xor) {
        if (rhsConst != nullptr && rhsConst->intValue() == 0) {
          forward(lhs);
          continue;
        }
        if (lhsConst != nullptr && lhsConst->intValue() == 0) {
          forward(rhs);
          continue;
        }
      }
      if (op == Opcode::Mul) {
        if (rhsConst != nullptr && rhsConst->intValue() == 1) {
          forward(lhs);
          continue;
        }
        if (lhsConst != nullptr && lhsConst->intValue() == 1) {
          forward(rhs);
          continue;
        }
      }
      if (op == Opcode::Sub && rhsConst != nullptr &&
          rhsConst->intValue() == 0) {
        forward(lhs);
        continue;
      }

      // Multiply by a power of two -> shift (a far cheaper FPGA circuit:
      // wiring instead of a DSP block).
      if (op == Opcode::Mul) {
        const Constant* factor = rhsConst != nullptr ? rhsConst : lhsConst;
        Value* other = rhsConst != nullptr ? lhs : rhs;
        if (factor != nullptr) {
          const int shift = log2Exact(factor->intValue());
          if (shift > 0) {
            auto shl = std::make_unique<Instruction>(Opcode::Shl, inst->type(),
                                                     inst->name() + ".shl");
            shl->addOperand(other);
            shl->addOperand(module.constInt(inst->type(), shift));
            Instruction* raw = block->insertAt(i, std::move(shl));
            function.replaceAllUsesWith(inst, raw);
            ++reduced;
            ++i; // Skip over the instruction we just inserted before.
            continue;
          }
        }
      }
    }
  }
  return reduced;
}

int eliminateCommonSubexpressions(Function& function) {
  int eliminated = 0;
  for (const auto& block : function.blocks()) {
    // Key: opcode, type, operands, immediates, predicate.
    using Key = std::tuple<int, int, std::vector<const Value*>, std::int64_t,
                           std::int64_t, int>;
    std::map<Key, Instruction*> seen;
    for (int i = 0; i < block->size(); ++i) {
      Instruction* inst = block->instruction(i);
      if (!isPure(*inst))
        continue;
      Key key{static_cast<int>(inst->opcode()), static_cast<int>(inst->type()),
              {inst->operands().begin(), inst->operands().end()},
              inst->immA(), inst->immB(), static_cast<int>(inst->cmpPred())};
      const auto [it, inserted] = seen.emplace(std::move(key), inst);
      if (!inserted) {
        function.replaceAllUsesWith(inst, it->second);
        ++eliminated;
      }
    }
  }
  return eliminated;
}

int eliminateDeadCode(Function& function) {
  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& block : function.blocks()) {
      for (int i = block->size() - 1; i >= 0; --i) {
        Instruction* inst = block->instruction(i);
        if (inst->isTerminator() || ir::hasSideEffects(inst->opcode()))
          continue;
        // Loads are pure in effect but may still be wanted for timing
        // fidelity; a dead load is genuinely dead, remove it too.
        if (!function.usersOf(inst).empty())
          continue;
        block->eraseAt(i);
        ++removed;
        changed = true;
      }
    }
  }
  return removed;
}

int hoistLoopInvariants(Function& function) {
  const analysis::DominatorTree dom(function);
  const analysis::LoopInfo loops(function, dom);
  int hoisted = 0;
  for (const auto& loop : loops.loops()) {
    if (loop->preheader == nullptr)
      continue;
    BasicBlock* preheader = loop->preheader;
    Instruction* preTerm = preheader->terminator();
    if (preTerm == nullptr)
      continue;
    bool changed = true;
    while (changed) {
      changed = false;
      for (ir::BasicBlock* block : loop->blocks) {
        for (int i = 0; i < block->size(); ++i) {
          Instruction* inst = block->instruction(i);
          if (!isPure(*inst) || inst->type() == Type::Void)
            continue;
          // Only hoist from blocks that execute on every iteration
          // (dominated-by-header is implied; require the block to
          // dominate the latch so conditional code stays put).
          bool dominatesAllLatches = true;
          for (ir::BasicBlock* latch : loop->latches)
            dominatesAllLatches &= dom.dominates(block, latch);
          if (!dominatesAllLatches)
            continue;
          bool invariant = true;
          for (ir::Value* operand : inst->operands()) {
            const Instruction* def = ir::asInstruction(operand);
            if (def != nullptr && loop->contains(def))
              invariant = false;
          }
          if (!invariant)
            continue;
          // Move the instruction before the preheader's terminator.
          std::unique_ptr<Instruction> moved = std::make_unique<Instruction>(
              inst->opcode(), inst->type(), inst->name());
          moved->setImms(inst->immA(), inst->immB());
          moved->setCmpPred(inst->cmpPred());
          for (ir::Value* operand : inst->operands())
            moved->addOperand(operand);
          Instruction* raw = preheader->insertAt(
              preheader->indexOf(preheader->terminator()), std::move(moved));
          function.replaceAllUsesWith(inst, raw);
          block->eraseAt(i);
          --i;
          ++hoisted;
          changed = true;
        }
      }
    }
  }
  return hoisted;
}

PassStats runScalarOptimizations(Function& function) {
  PassStats stats;
  for (int round = 0; round < 8; ++round) {
    PassStats roundStats;
    roundStats.foldedConstants = foldConstants(function);
    roundStats.strengthReduced = reduceStrength(function);
    roundStats.commonSubexprs = eliminateCommonSubexpressions(function);
    roundStats.hoisted = hoistLoopInvariants(function);
    roundStats.deadRemoved = eliminateDeadCode(function);
    stats.foldedConstants += roundStats.foldedConstants;
    stats.strengthReduced += roundStats.strengthReduced;
    stats.commonSubexprs += roundStats.commonSubexprs;
    stats.hoisted += roundStats.hoisted;
    stats.deadRemoved += roundStats.deadRemoved;
    if (roundStats.total() == 0)
      break;
  }
  return stats;
}

PassStats runScalarOptimizations(ir::Module& module) {
  PassStats stats;
  for (const auto& function : module.functions()) {
    const PassStats fnStats = runScalarOptimizations(*function);
    stats.foldedConstants += fnStats.foldedConstants;
    stats.strengthReduced += fnStats.strengthReduced;
    stats.commonSubexprs += fnStats.commonSubexprs;
    stats.hoisted += fnStats.hoisted;
    stats.deadRemoved += fnStats.deadRemoved;
  }
  return stats;
}

} // namespace cgpa::opt
