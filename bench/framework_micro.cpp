// Self-timing microbenchmark of the framework's execution hot loops:
// simulator throughput (simulated cycles per wall-second) and interpreter
// throughput (IR instructions per wall-second), per paper kernel.
//
// Writes BENCH_simthroughput.json next to the working directory and prints
// the same numbers as a table. Each kernel's entry carries the recorded
// pre-optimization baseline (hash-map register files + busy-poll
// scheduling, -O2, the reference dev machine) and the speedup against it,
// so a regression shows up as speedup_vs_baseline < 1 without having to
// check out and rebuild the old code.
//
// Usage: framework_micro [--min-seconds S] [--out PATH]
//   --min-seconds: measurement time per kernel per engine (default 1.0;
//                  the bench-smoke ctest target uses 0.02 for a fast
//                  plumbing check).
//   --out:         output JSON path (default BENCH_simthroughput.json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cgpa/driver.hpp"

namespace {

using namespace cgpa;
using Clock = std::chrono::steady_clock;

/// Throughput of the pre-optimization simulator/interpreter on the same
/// default workloads, recorded at the seed commit on the reference dev
/// machine. Units: simulated cycles per second / interpreted instructions
/// per second.
struct RecordedBaseline {
  const char* kernel;
  double simCyclesPerSec;
  double interpInstrPerSec;
};

constexpr RecordedBaseline kBaselines[] = {
    {"kmeans", 2613248.0, 63763533.0},
    {"hash-indexing", 1189462.0, 71280876.0},
    {"ks", 1059966.0, 58172183.0},
    {"em3d", 1772188.0, 64403115.0},
    {"1d-gaussblur", 1227123.0, 63159353.0},
};

const RecordedBaseline* baselineFor(const std::string& name) {
  for (const RecordedBaseline& baseline : kBaselines)
    if (name == baseline.kernel)
      return &baseline;
  return nullptr;
}

struct KernelMeasurement {
  std::string kernel;
  double simCyclesPerSec = 0;
  double simSpeedup = 0;
  std::uint64_t simCyclesPerRun = 0;
  int simRuns = 0;
  double interpInstrPerSec = 0;
  double interpSpeedup = 0;
  std::uint64_t interpInstrPerRun = 0;
  int interpRuns = 0;
};

KernelMeasurement measureKernel(const kernels::Kernel& kernel,
                                double minSeconds) {
  KernelMeasurement m;
  m.kernel = kernel.name();

  // Simulator: cycles simulated per wall-second. Workload construction is
  // excluded from the timed region; compile and plan construction
  // (scheduling + MicroOp decode, amortized by SystemSimulator) happen
  // once.
  const driver::CompiledAccelerator accel = driver::compileKernel(
      kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  sim::SystemSimulator simulator(accel.pipelineModule, sim::SystemConfig{});
  std::uint64_t simCycles = 0;
  double simSec = 0;
  while (simSec < minSeconds) {
    kernels::Workload work = kernel.buildWorkload(kernels::WorkloadConfig{});
    const auto t0 = Clock::now();
    const sim::SimResult result = simulator.run(*work.memory, work.args);
    simSec += std::chrono::duration<double>(Clock::now() - t0).count();
    simCycles += result.cycles;
    m.simCyclesPerRun = result.cycles;
    ++m.simRuns;
  }
  m.simCyclesPerSec = static_cast<double>(simCycles) / simSec;

  // Interpreter: IR instructions executed per wall-second.
  const auto module = kernel.buildModule();
  const ir::Function* fn = module->findFunction("kernel");
  std::uint64_t instrs = 0;
  double interpSec = 0;
  while (interpSec < minSeconds) {
    kernels::Workload work = kernel.buildWorkload(kernels::WorkloadConfig{});
    interp::Interpreter interpreter(*work.memory);
    interp::LiveoutFile liveouts;
    interpreter.setLiveoutFile(&liveouts);
    const auto t0 = Clock::now();
    const interp::InterpResult result = interpreter.run(*fn, work.args);
    interpSec += std::chrono::duration<double>(Clock::now() - t0).count();
    instrs += result.instructionsExecuted;
    m.interpInstrPerRun = result.instructionsExecuted;
    ++m.interpRuns;
  }
  m.interpInstrPerSec = static_cast<double>(instrs) / interpSec;

  if (const RecordedBaseline* baseline = baselineFor(m.kernel)) {
    m.simSpeedup = m.simCyclesPerSec / baseline->simCyclesPerSec;
    m.interpSpeedup = m.interpInstrPerSec / baseline->interpInstrPerSec;
  }
  return m;
}

void writeJson(const std::vector<KernelMeasurement>& measurements,
               const std::string& path, double minSeconds) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"simthroughput\",\n");
  std::fprintf(out, "  \"min_seconds\": %g,\n", minSeconds);
  std::fprintf(out, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const KernelMeasurement& m = measurements[i];
    const RecordedBaseline* baseline = baselineFor(m.kernel);
    std::fprintf(out, "    {\n");
    std::fprintf(out, "      \"kernel\": \"%s\",\n", m.kernel.c_str());
    std::fprintf(out,
                 "      \"sim\": {\"cycles_per_sec\": %.0f, "
                 "\"cycles_per_run\": %llu, \"runs\": %d, "
                 "\"baseline_cycles_per_sec\": %.0f, "
                 "\"speedup_vs_baseline\": %.3f},\n",
                 m.simCyclesPerSec,
                 static_cast<unsigned long long>(m.simCyclesPerRun),
                 m.simRuns,
                 baseline != nullptr ? baseline->simCyclesPerSec : 0.0,
                 m.simSpeedup);
    std::fprintf(out,
                 "      \"interp\": {\"instr_per_sec\": %.0f, "
                 "\"instr_per_run\": %llu, \"runs\": %d, "
                 "\"baseline_instr_per_sec\": %.0f, "
                 "\"speedup_vs_baseline\": %.3f}\n",
                 m.interpInstrPerSec,
                 static_cast<unsigned long long>(m.interpInstrPerRun),
                 m.interpRuns,
                 baseline != nullptr ? baseline->interpInstrPerSec : 0.0,
                 m.interpSpeedup);
    std::fprintf(out, "    }%s\n", i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

} // namespace

int main(int argc, char** argv) {
  double minSeconds = 1.0;
  std::string outPath = "BENCH_simthroughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-seconds") == 0 && i + 1 < argc)
      minSeconds = std::stod(argv[++i]);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      outPath = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: %s [--min-seconds S] [--out PATH]\n", argv[0]);
      return 1;
    }
  }

  std::vector<KernelMeasurement> measurements;
  std::printf("%-14s %15s %10s %15s %10s\n", "kernel", "sim cyc/s",
              "vs base", "interp inst/s", "vs base");
  for (const kernels::Kernel* kernel : kernels::allKernels()) {
    measurements.push_back(measureKernel(*kernel, minSeconds));
    const KernelMeasurement& m = measurements.back();
    std::printf("%-14s %15.0f %9.2fx %15.0f %9.2fx\n", m.kernel.c_str(),
                m.simCyclesPerSec, m.simSpeedup, m.interpInstrPerSec,
                m.interpSpeedup);
  }
  writeJson(measurements, outPath, minSeconds);
  std::printf("wrote %s\n", outPath.c_str());
  return 0;
}
