// Self-timing microbenchmark of the framework's execution hot loops:
// simulator throughput (simulated cycles per wall-second) under both
// execution tiers, and interpreter throughput (IR instructions per
// wall-second), per paper kernel.
//
// Writes BENCH_simthroughput.json next to the working directory and prints
// the same numbers as a table. Each kernel's entry carries the recorded
// pre-optimization baseline (hash-map register files + busy-poll
// scheduling, -O2, the reference dev machine) and the speedup against it,
// so a regression shows up as speedup_vs_baseline < 1 without having to
// check out and rebuild the old code. The threaded tier additionally
// reports speedup_vs_interp: its same-binary advantage over the
// interpreting tier measured in the same process.
//
// Timing method: runs are measured in batches whose size doubles until one
// timed batch spans at least kMinBatchSeconds, so short kernels amortize
// timer overhead and scheduler noise across many runs instead of taking
// one noisy sample. Workload construction always stays outside the timed
// region.
//
// The two sim sections double as a cheap bit-identity check: the tiers
// must simulate the identical cycle count per run, and the bench exits
// nonzero if they disagree.
//
// Usage: framework_micro [--min-seconds S] [--out PATH]
//   --min-seconds: measurement time per kernel per engine (default 1.0;
//                  the bench-smoke ctest target uses 0.02 for a fast
//                  plumbing check).
//   --out:         output JSON path (default BENCH_simthroughput.json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cgpa/driver.hpp"

namespace {

using namespace cgpa;
using Clock = std::chrono::steady_clock;

/// One timed batch must span at least this long for its sample to count
/// toward the doubling decision; below it the batch size doubles.
constexpr double kMinBatchSeconds = 0.005;

/// Throughput of the pre-optimization simulator/interpreter on the same
/// default workloads, recorded at the seed commit on the reference dev
/// machine. Units: simulated cycles per second / interpreted instructions
/// per second.
struct RecordedBaseline {
  const char* kernel;
  double simCyclesPerSec;
  double interpInstrPerSec;
};

constexpr RecordedBaseline kBaselines[] = {
    {"kmeans", 2613248.0, 63763533.0},
    {"hash-indexing", 1189462.0, 71280876.0},
    {"ks", 1059966.0, 58172183.0},
    {"em3d", 1772188.0, 64403115.0},
    {"1d-gaussblur", 1227123.0, 63159353.0},
};

const RecordedBaseline* baselineFor(const std::string& name) {
  for (const RecordedBaseline& baseline : kBaselines)
    if (name == baseline.kernel)
      return &baseline;
  return nullptr;
}

/// One measured engine: work units (simulated cycles / interpreted
/// instructions) per wall-second, plus the per-run unit count for
/// cross-engine identity checks.
struct Throughput {
  double unitsPerSec = 0;
  std::uint64_t unitsPerRun = 0;
  int runs = 0;
};

/// Batched measurement loop. `runOne(i)` executes run `i` of the current
/// batch against a pre-built workload and returns its unit count;
/// `prepare(n)` (re)builds `n` fresh workloads before the timed region.
template <typename Prepare, typename RunOne>
Throughput measureBatched(double minSeconds, Prepare prepare, RunOne runOne) {
  Throughput t;
  std::uint64_t units = 0;
  double seconds = 0;
  std::size_t batch = 1;
  while (seconds < minSeconds) {
    prepare(batch);
    const auto t0 = Clock::now();
    std::uint64_t batchUnits = 0;
    for (std::size_t i = 0; i < batch; ++i)
      batchUnits += runOne(i);
    const double batchSec =
        std::chrono::duration<double>(Clock::now() - t0).count();
    units += batchUnits;
    seconds += batchSec;
    t.runs += static_cast<int>(batch);
    t.unitsPerRun = batchUnits / batch;
    // Too short to trust one timer read: double the batch (bounded so a
    // pathologically fast run cannot exhaust memory on workloads).
    if (batchSec < kMinBatchSeconds && batch < (1u << 20))
      batch *= 2;
  }
  t.unitsPerSec = static_cast<double>(units) / seconds;
  return t;
}

struct KernelMeasurement {
  std::string kernel;
  Throughput sim;         ///< Cycle sim, interpreting tier.
  Throughput simThreaded; ///< Cycle sim, threaded tier.
  Throughput interp;      ///< Functional IR interpreter.
  double simSpeedup = 0;              ///< Interp tier vs recorded baseline.
  double threadedSpeedupVsBaseline = 0;
  double threadedSpeedupVsInterp = 0; ///< Same-binary tier-vs-tier ratio.
  double interpSpeedup = 0;
};

Throughput measureSim(const kernels::Kernel& kernel,
                      const driver::CompiledAccelerator& accel,
                      sim::SimBackend backend, double minSeconds) {
  // Compile and plan construction (scheduling + MicroOp decode + threaded
  // lowering, amortized by SystemSimulator) happen once, outside timing.
  sim::SystemConfig config;
  config.backend = backend;
  sim::SystemSimulator simulator(accel.pipelineModule, config);
  std::vector<kernels::Workload> works;
  return measureBatched(
      minSeconds,
      [&](std::size_t n) {
        works.clear();
        for (std::size_t i = 0; i < n; ++i)
          works.push_back(kernel.buildWorkload(kernels::WorkloadConfig{}));
      },
      [&](std::size_t i) {
        return simulator.run(*works[i].memory, works[i].args).cycles;
      });
}

KernelMeasurement measureKernel(const kernels::Kernel& kernel,
                                double minSeconds) {
  KernelMeasurement m;
  m.kernel = kernel.name();

  const driver::CompiledAccelerator accel = driver::compileKernel(
      kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  m.sim = measureSim(kernel, accel, sim::SimBackend::Interp, minSeconds);
  m.simThreaded =
      measureSim(kernel, accel, sim::SimBackend::Threaded, minSeconds);

  // Interpreter: IR instructions executed per wall-second.
  const auto module = kernel.buildModule();
  const ir::Function* fn = module->findFunction("kernel");
  std::vector<kernels::Workload> works;
  m.interp = measureBatched(
      minSeconds,
      [&](std::size_t n) {
        works.clear();
        for (std::size_t i = 0; i < n; ++i)
          works.push_back(kernel.buildWorkload(kernels::WorkloadConfig{}));
      },
      [&](std::size_t i) {
        interp::Interpreter interpreter(*works[i].memory);
        interp::LiveoutFile liveouts;
        interpreter.setLiveoutFile(&liveouts);
        return interpreter.run(*fn, works[i].args).instructionsExecuted;
      });

  if (const RecordedBaseline* baseline = baselineFor(m.kernel)) {
    m.simSpeedup = m.sim.unitsPerSec / baseline->simCyclesPerSec;
    m.threadedSpeedupVsBaseline =
        m.simThreaded.unitsPerSec / baseline->simCyclesPerSec;
    m.interpSpeedup = m.interp.unitsPerSec / baseline->interpInstrPerSec;
  }
  m.threadedSpeedupVsInterp = m.sim.unitsPerSec > 0
                                  ? m.simThreaded.unitsPerSec /
                                        m.sim.unitsPerSec
                                  : 0;
  return m;
}

void writeJson(const std::vector<KernelMeasurement>& measurements,
               const std::string& path, double minSeconds) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"simthroughput\",\n");
  std::fprintf(out, "  \"min_seconds\": %g,\n", minSeconds);
  std::fprintf(out, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const KernelMeasurement& m = measurements[i];
    const RecordedBaseline* baseline = baselineFor(m.kernel);
    std::fprintf(out, "    {\n");
    std::fprintf(out, "      \"kernel\": \"%s\",\n", m.kernel.c_str());
    std::fprintf(out,
                 "      \"sim\": {\"cycles_per_sec\": %.0f, "
                 "\"cycles_per_run\": %llu, \"runs\": %d, "
                 "\"baseline_cycles_per_sec\": %.0f, "
                 "\"speedup_vs_baseline\": %.3f},\n",
                 m.sim.unitsPerSec,
                 static_cast<unsigned long long>(m.sim.unitsPerRun),
                 m.sim.runs,
                 baseline != nullptr ? baseline->simCyclesPerSec : 0.0,
                 m.simSpeedup);
    std::fprintf(out,
                 "      \"sim_threaded\": {\"cycles_per_sec\": %.0f, "
                 "\"cycles_per_run\": %llu, \"runs\": %d, "
                 "\"baseline_cycles_per_sec\": %.0f, "
                 "\"speedup_vs_baseline\": %.3f, "
                 "\"speedup_vs_interp\": %.3f},\n",
                 m.simThreaded.unitsPerSec,
                 static_cast<unsigned long long>(m.simThreaded.unitsPerRun),
                 m.simThreaded.runs,
                 baseline != nullptr ? baseline->simCyclesPerSec : 0.0,
                 m.threadedSpeedupVsBaseline, m.threadedSpeedupVsInterp);
    std::fprintf(out,
                 "      \"interp\": {\"instr_per_sec\": %.0f, "
                 "\"instr_per_run\": %llu, \"runs\": %d, "
                 "\"baseline_instr_per_sec\": %.0f, "
                 "\"speedup_vs_baseline\": %.3f}\n",
                 m.interp.unitsPerSec,
                 static_cast<unsigned long long>(m.interp.unitsPerRun),
                 m.interp.runs,
                 baseline != nullptr ? baseline->interpInstrPerSec : 0.0,
                 m.interpSpeedup);
    std::fprintf(out, "    }%s\n", i + 1 < measurements.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

} // namespace

int main(int argc, char** argv) {
  double minSeconds = 1.0;
  std::string outPath = "BENCH_simthroughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-seconds") == 0 && i + 1 < argc)
      minSeconds = std::stod(argv[++i]);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      outPath = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: %s [--min-seconds S] [--out PATH]\n", argv[0]);
      return 1;
    }
  }

  std::vector<KernelMeasurement> measurements;
  bool identical = true;
  std::printf("%-14s %13s %13s %9s %9s %14s\n", "kernel", "interp cyc/s",
              "threaded c/s", "thr/int", "vs base", "interp inst/s");
  for (const kernels::Kernel* kernel : kernels::allKernels()) {
    measurements.push_back(measureKernel(*kernel, minSeconds));
    const KernelMeasurement& m = measurements.back();
    std::printf("%-14s %13.0f %13.0f %8.2fx %8.2fx %14.0f\n",
                m.kernel.c_str(), m.sim.unitsPerSec,
                m.simThreaded.unitsPerSec, m.threadedSpeedupVsInterp,
                m.threadedSpeedupVsBaseline, m.interp.unitsPerSec);
    if (m.sim.unitsPerRun != m.simThreaded.unitsPerRun) {
      identical = false;
      std::fprintf(stderr,
                   "%s: tiers disagree on cycles per run (interp %llu, "
                   "threaded %llu)\n",
                   m.kernel.c_str(),
                   static_cast<unsigned long long>(m.sim.unitsPerRun),
                   static_cast<unsigned long long>(m.simThreaded.unitsPerRun));
    }
  }
  writeJson(measurements, outPath, minSeconds);
  std::printf("wrote %s\n", outPath.c_str());
  return identical ? 0 : 1;
}
