// Google-benchmark microbenchmarks of the framework itself: compile-flow
// throughput (analyses + partition + transform) and simulator speed.
#include <benchmark/benchmark.h>

#include "cgpa/driver.hpp"

namespace {

using namespace cgpa;

void BM_CompileCgpa(benchmark::State& state) {
  const kernels::Kernel* kernel =
      kernels::allKernels()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    const driver::CompiledAccelerator accel = driver::compileKernel(
        *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
    benchmark::DoNotOptimize(accel.shape.data());
  }
  state.SetLabel(kernel->name());
}
BENCHMARK(BM_CompileCgpa)->DenseRange(0, 4);

void BM_SimulateCgpa(benchmark::State& state) {
  const kernels::Kernel* kernel =
      kernels::allKernels()[static_cast<std::size_t>(state.range(0))];
  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  std::uint64_t cycles = 0;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
    const sim::SimResult result = sim::simulateSystem(
        accel.pipelineModule, *work.memory, work.args, sim::SystemConfig{});
    cycles += result.cycles;
    ++iterations;
    benchmark::DoNotOptimize(result.cycles);
  }
  state.SetLabel(kernel->name());
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateCgpa)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_Interpreter(benchmark::State& state) {
  const kernels::Kernel* kernel =
      kernels::allKernels()[static_cast<std::size_t>(state.range(0))];
  auto module = kernel->buildModule();
  const ir::Function* fn = module->findFunction("kernel");
  for (auto _ : state) {
    kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
    interp::Interpreter interp(*work.memory);
    interp::LiveoutFile liveouts;
    interp.setLiveoutFile(&liveouts);
    benchmark::DoNotOptimize(interp.run(*fn, work.args).returnValue);
  }
  state.SetLabel(kernel->name());
}
BENCHMARK(BM_Interpreter)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
