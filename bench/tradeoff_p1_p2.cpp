// Regenerates the paper Section 4.2 "Tradeoff" study: decoupled pipelining
// (P1, heavy replicable sections in a sequential stage) vs replicated
// data-level parallelism (P2, replicable sections duplicated into the
// parallel workers) for em3d and 1D-Gaussblur.
// Paper reference points: P1 outperforms P2 by 6% (em3d) and 15%
// (Gaussblur); P1 reduces energy by 11% and 14% respectively.
#include "common.hpp"

int main() {
  using namespace cgpa;
  bench::banner(
      "CGPA reproduction - replicable-section tradeoff (P1 vs P2)");
  std::printf("%-16s %10s %10s %8s %10s %10s %8s\n", "benchmark", "P1 cyc",
              "P2 cyc", "P1 perf+", "P1 uJ", "P2 uJ", "P1 E-");
  for (const kernels::Kernel* kernel : kernels::allKernels()) {
    if (!kernel->supportsP2())
      continue;
    driver::EvaluationOptions options;
    options.runP2 = true;
    const driver::KernelEvaluation eval =
        driver::evaluateKernel(*kernel, options);
    const double perfGain =
        100.0 * (static_cast<double>(eval.cgpaP2->cycles) /
                     static_cast<double>(eval.cgpaP1.cycles) -
                 1.0);
    const double energySave =
        100.0 * (1.0 - eval.cgpaP1.energyUj / eval.cgpaP2->energyUj);
    std::printf("%-16s %10llu %10llu %7.1f%% %10.2f %10.2f %7.1f%%\n",
                eval.kernelName.c_str(),
                static_cast<unsigned long long>(eval.cgpaP1.cycles),
                static_cast<unsigned long long>(eval.cgpaP2->cycles),
                perfGain, eval.cgpaP1.energyUj, eval.cgpaP2->energyUj,
                energySave);
  }
  std::printf("\nPaper: P1 faster by 6%% (em3d) / 15%% (Gaussblur); energy "
              "reduced by 11%% / 14%%.\n");
  std::printf("P2 duplicates the traversal/fetch section into every worker: "
              "more memory traffic,\nno FIFO channels — the decoupled "
              "pipeline (P1) wins on both axes.\n");
  return 0;
}
