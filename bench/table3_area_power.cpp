// Regenerates paper Table 3: ALUT usage, power, energy, and energy
// efficiency for Legup vs CGPA(P1) (and P2 for em3d / 1D-Gaussblur).
// Paper reference points: ~4.1x ALUT ratio, ~20% geomean energy overhead;
// energy efficiency is E_mips / E_accelerator.
#include "common.hpp"

int main() {
  using namespace cgpa;
  bench::banner("CGPA reproduction - Table 3: area, power, and energy");
  const auto evals = bench::evaluateAll(/*runP2=*/true);
  std::printf("%s\n", driver::formatTable3(evals).c_str());
  std::printf("Paper: ALUT ratio ~4.1x; geomean energy overhead ~20%%.\n");
  std::printf("FIFO buffers use BRAM (not counted in ALUTs), as in the "
              "paper:\n");
  for (const auto& eval : evals)
    std::printf("  %-16s CGPA(P1) FIFO BRAM bits: %d\n",
                eval.kernelName.c_str(), eval.cgpaP1.fifoBramBits);
  return 0;
}
