// Regenerates paper Figure 4: loop speedups of Legup-style sequential
// accelerators and CGPA pipelined accelerators, normalized to the MIPS
// software core. Paper reference points: Legup geomean 1.85x, CGPA geomean
// 6.0x over MIPS (3.3x over Legup, per-kernel 3.0x-3.8x).
#include "common.hpp"

int main() {
  using namespace cgpa;
  bench::banner("CGPA reproduction - Figure 4: loop speedups");
  const auto evals = bench::evaluateAll(/*runP2=*/false);
  std::printf("%s\n", driver::formatFigure4(evals).c_str());
  std::printf("Paper: Legup geomean 1.85x, CGPA geomean 6.0x over MIPS "
              "(3.3x over Legup).\n\n");
  std::printf("Raw cycle counts:\n");
  std::printf("%-16s %12s %12s %12s\n", "benchmark", "MIPS", "Legup", "CGPA");
  for (const auto& eval : evals)
    std::printf("%-16s %12llu %12llu %12llu\n", eval.kernelName.c_str(),
                static_cast<unsigned long long>(eval.mips.cycles),
                static_cast<unsigned long long>(eval.legup.cycles),
                static_cast<unsigned long long>(eval.cgpaP1.cycles));
  return 0;
}
