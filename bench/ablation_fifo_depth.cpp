// Ablation: FIFO depth sensitivity. The paper fixes depth 16 and argues
// the buffers let the pipeline tolerate variable memory latency ("the
// impact of variable latency is limited to one stage as long as the
// buffers are not empty"). Sweeping the depth quantifies that claim.
#include "common.hpp"

int main() {
  using namespace cgpa;
  bench::banner("CGPA reproduction - FIFO depth ablation (latency tolerance)");
  for (const char* name : {"em3d", "hash-indexing", "1d-gaussblur"}) {
    const kernels::Kernel* kernel = kernels::kernelByName(name);
    std::printf("--- %s ---\n", kernel->name().c_str());
    std::printf("%8s %12s %12s %10s\n", "depth", "cycles", "stallFifo",
                "vs d=16");

    const driver::CompiledAccelerator accel = driver::compileKernel(
        *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});

    std::uint64_t cyclesAt16 = 0;
    struct Row {
      int depth;
      std::uint64_t cycles;
      std::uint64_t stallFifo;
    };
    std::vector<Row> rows;
    for (int depth : {2, 4, 8, 16, 32, 64}) {
      kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
      sim::SystemConfig config;
      config.fifoDepth = depth;
      const sim::SimResult result = sim::simulateSystem(
          accel.pipelineModule, *work.memory, work.args, config);
      rows.push_back({depth, result.cycles, result.stallFifo});
      if (depth == 16)
        cyclesAt16 = result.cycles;
    }
    for (const Row& row : rows)
      std::printf("%8d %12llu %12llu %9.2fx\n", row.depth,
                  static_cast<unsigned long long>(row.cycles),
                  static_cast<unsigned long long>(row.stallFifo),
                  static_cast<double>(row.cycles) /
                      static_cast<double>(cyclesAt16));
  }
  std::printf("\nShallow FIFOs couple the stages (backpressure on every "
              "cache miss); beyond the\npaper's depth of 16 the returns "
              "diminish.\n");
  return 0;
}
