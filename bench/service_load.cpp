// Service load benchmark: steady-state throughput and latency of the
// in-process serve::Server (the same worker pool + plan cache cgpad
// runs), per kernel and worker count.
//
// For each (kernel, workers) point the server is warmed with one job so
// the plan cache is hot, then `workers` client threads submit the same
// job back to back for the measurement window. Each submit() is timed
// end to end (enqueue -> worker compile-cache lookup -> simulate ->
// response), giving jobs/sec plus p50/p99 latency in microseconds.
// Worker counts swept: 1, 4, and the machine's hardware concurrency
// (deduplicated), so the committed baseline records both the serial
// floor and the saturated pool.
//
// Writes BENCH_serviceload.json (schema cgpa.serviceload.v1) and prints
// the same numbers as a table. tools/bench_trend.py compares the
// jobs_per_sec of matching points against the committed baseline; the
// load-smoke ctest fixture runs this with a short window and a loose
// threshold to catch structural collapses (a point disappearing, the
// cache no longer hitting) without gating on scheduler noise.
//
// Usage: service_load [--min-seconds S] [--out PATH]
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/job.hpp"
#include "serve/job_trace.hpp"
#include "serve/server.hpp"
#include "serve/service_metrics.hpp"
#include "trace/json.hpp"

namespace {

using namespace cgpa;
using Clock = std::chrono::steady_clock;

/// Per-phase latency summary pulled from the server's metrics registry
/// (the same histograms /metrics exposes), so a jobs/sec regression in
/// the trend gate can be localized to the phase that moved.
struct PhaseSummary {
  std::uint64_t count = 0;
  double p50Micros = 0;
  double p99Micros = 0;
};

struct Point {
  std::string kernel;
  int workers = 0;
  std::size_t jobs = 0;
  double seconds = 0;
  double jobsPerSec = 0;
  double p50Micros = 0;
  double p99Micros = 0;
  double cacheHitRate = 0;
  std::array<PhaseSummary, serve::kJobPhaseCount> phases;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty())
    return 0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// One measurement point: a fresh server with `workers` pool threads,
/// saturated by the same number of client threads.
Point measure(const std::string& kernel, int workers, double minSeconds) {
  serve::ServerOptions options;
  options.workers = workers;
  serve::Server server(options);

  serve::JobRequest job;
  job.id = trace::JsonValue(kernel);
  job.kernel = kernel;

  // Warm run: the compile miss lands here, so the timed loop measures
  // the steady state every subsequent request sees (plan-cache hit +
  // reusable per-worker simulator).
  const trace::JsonValue warm = server.submit(job);
  const trace::JsonValue* ok = warm.find("ok");
  if (ok == nullptr || !ok->asBool()) {
    std::fprintf(stderr, "service_load: warmup job failed for %s:\n%s\n",
                 kernel.c_str(), warm.dump(2).c_str());
    std::exit(1);
  }

  std::mutex latencyMutex;
  std::vector<double> latencies;
  std::atomic<bool> stop{false};
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(workers));
  for (int c = 0; c < workers; ++c) {
    clients.emplace_back([&server, &job, &stop, &latencyMutex, &latencies] {
      std::vector<double> local;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto start = Clock::now();
        server.submit(job);
        local.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count());
      }
      std::lock_guard lock(latencyMutex);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(minSeconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients)
    client.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  Point point;
  point.kernel = kernel;
  point.workers = workers;
  point.jobs = latencies.size();
  point.seconds = seconds;
  point.jobsPerSec = static_cast<double>(latencies.size()) / seconds;
  std::sort(latencies.begin(), latencies.end());
  point.p50Micros = percentile(latencies, 0.50);
  point.p99Micros = percentile(latencies, 0.99);
  const serve::PlanCacheStats cache = server.cacheStats();
  point.cacheHitRate =
      cache.lookups == 0
          ? 0
          : static_cast<double>(cache.hits) / static_cast<double>(cache.lookups);
  for (std::size_t i = 0; i < serve::kJobPhaseCount; ++i) {
    const serve::LatencyHistogram::Snapshot snap =
        server.metrics().phaseSnapshot(static_cast<serve::JobPhase>(i));
    point.phases[i].count = snap.count;
    point.phases[i].p50Micros = snap.p50Nanos / 1000.0;
    point.phases[i].p99Micros = snap.p99Nanos / 1000.0;
  }
  server.wait();
  return point;
}

} // namespace

int main(int argc, char** argv) {
  double minSeconds = 1.0;
  std::string outPath = "BENCH_serviceload.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-seconds") == 0 && i + 1 < argc)
      minSeconds = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      outPath = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: service_load [--min-seconds S] [--out PATH]\n");
      return 2;
    }
  }

  const int maxWorkers = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  std::vector<int> workerCounts = {1, 4, maxWorkers};
  std::sort(workerCounts.begin(), workerCounts.end());
  workerCounts.erase(std::unique(workerCounts.begin(), workerCounts.end()),
                     workerCounts.end());

  std::printf("%-14s %8s %10s %12s %12s %12s %8s\n", "kernel", "workers",
              "jobs", "jobs/sec", "p50 us", "p99 us", "hit%");
  std::vector<Point> points;
  for (const char* kernel : {"em3d", "hash-indexing"}) {
    for (const int workers : workerCounts) {
      const Point point = measure(kernel, workers, minSeconds);
      std::printf("%-14s %8d %10zu %12.1f %12.1f %12.1f %7.1f%%\n",
                  point.kernel.c_str(), point.workers, point.jobs,
                  point.jobsPerSec, point.p50Micros, point.p99Micros,
                  point.cacheHitRate * 100.0);
      points.push_back(point);
    }
  }

  trace::JsonValue doc = trace::JsonValue::object();
  doc.set("schema", "cgpa.serviceload.v1");
  doc.set("bench", "serviceload");
  doc.set("min_seconds", minSeconds);
  doc.set("max_workers", maxWorkers);
  trace::JsonValue rows = trace::JsonValue::array();
  for (const Point& point : points) {
    trace::JsonValue row = trace::JsonValue::object();
    row.set("kernel", point.kernel);
    row.set("workers", point.workers);
    row.set("jobs", static_cast<std::uint64_t>(point.jobs));
    row.set("seconds", point.seconds);
    row.set("jobs_per_sec", point.jobsPerSec);
    row.set("p50_micros", point.p50Micros);
    row.set("p99_micros", point.p99Micros);
    row.set("cache_hit_rate", point.cacheHitRate);
    trace::JsonValue phases = trace::JsonValue::object();
    for (std::size_t i = 0; i < serve::kJobPhaseCount; ++i) {
      if (point.phases[i].count == 0)
        continue; // Phase never ran at this point (e.g. compile, all hits).
      trace::JsonValue phase = trace::JsonValue::object();
      phase.set("count", point.phases[i].count);
      phase.set("p50_micros", point.phases[i].p50Micros);
      phase.set("p99_micros", point.phases[i].p99Micros);
      phases.set(serve::toString(static_cast<serve::JobPhase>(i)),
                 std::move(phase));
    }
    row.set("phases", std::move(phases));
    rows.push(std::move(row));
  }
  doc.set("points", std::move(rows));

  std::ofstream out(outPath);
  if (out)
    out << doc.dump(2) << "\n";
  if (!out) {
    std::fprintf(stderr, "service_load: cannot write %s\n", outPath.c_str());
    return 1;
  }
  std::printf("service_load: wrote %s\n", outPath.c_str());
  return 0;
}
