// Shared helpers for the experiment harness binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "cgpa/report.hpp"

namespace cgpa::bench {

/// Evaluate all five paper kernels with the paper's configuration
/// (4 workers, FIFO depth 16 x 32 bit, 8-port D$, 200 MHz). When the
/// CGPA_STATS_JSON environment variable names a path, the complete
/// evaluation set (every measurement plus the full per-run simulator
/// stats) is additionally written there as machine-readable JSON — lets
/// CI and sweep scripts consume any harness binary without scraping its
/// stdout tables.
inline std::vector<driver::KernelEvaluation> evaluateAll(bool runP2) {
  std::vector<driver::KernelEvaluation> evals;
  for (const kernels::Kernel* kernel : kernels::allKernels()) {
    driver::EvaluationOptions options;
    options.runP2 = runP2;
    evals.push_back(driver::evaluateKernel(*kernel, options));
  }
  if (const char* statsPath = std::getenv("CGPA_STATS_JSON");
      statsPath != nullptr && statsPath[0] != '\0') {
    std::ofstream out(statsPath);
    if (out) {
      out << driver::formatEvaluationsJson(evals);
      std::printf("wrote %s\n", statsPath);
    } else {
      std::fprintf(stderr, "cannot write CGPA_STATS_JSON=%s\n", statsPath);
    }
  }
  return evals;
}

inline void banner(const char* title) {
  std::printf("==============================================================="
              "=\n%s\n"
              "================================================================"
              "\n",
              title);
}

} // namespace cgpa::bench
