// Shared helpers for the experiment harness binaries.
#pragma once

#include <cstdio>
#include <vector>

#include "cgpa/report.hpp"

namespace cgpa::bench {

/// Evaluate all five paper kernels with the paper's configuration
/// (4 workers, FIFO depth 16 x 32 bit, 8-port D$, 200 MHz).
inline std::vector<driver::KernelEvaluation> evaluateAll(bool runP2) {
  std::vector<driver::KernelEvaluation> evals;
  for (const kernels::Kernel* kernel : kernels::allKernels()) {
    driver::EvaluationOptions options;
    options.runP2 = runP2;
    evals.push_back(driver::evaluateKernel(*kernel, options));
  }
  return evals;
}

inline void banner(const char* title) {
  std::printf("==============================================================="
              "=\n%s\n"
              "================================================================"
              "\n",
              title);
}

} // namespace cgpa::bench
