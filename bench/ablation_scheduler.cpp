// Ablation: FSM scheduler knobs — operator chaining, the paper's
// constraint (3) (produce/consume never co-scheduled with memory ops), and
// per-worker memory ports. Reports CGPA(P1) cycles for each configuration.
#include "common.hpp"

namespace {

std::uint64_t runConfig(const cgpa::kernels::Kernel& kernel,
                        const cgpa::hls::ScheduleOptions& schedule) {
  using namespace cgpa;
  driver::CompileOptions compile;
  compile.schedule = schedule;
  const driver::CompiledAccelerator accel =
      driver::compileKernel(kernel, driver::Flow::CgpaP1, compile);
  kernels::Workload work = kernel.buildWorkload(kernels::WorkloadConfig{});
  sim::SystemConfig config;
  config.schedule = schedule;
  const sim::SimResult result = sim::simulateSystem(
      accel.pipelineModule, *work.memory, work.args, config);
  return result.cycles;
}

} // namespace

int main() {
  using namespace cgpa;
  bench::banner("CGPA reproduction - scheduler ablation");
  std::printf("%-16s %12s %12s %12s %12s\n", "benchmark", "baseline",
              "no-chain", "no-constr3", "2 mem ports");
  for (const kernels::Kernel* kernel : kernels::allKernels()) {
    hls::ScheduleOptions base;
    hls::ScheduleOptions noChain = base;
    noChain.enableChaining = false; // Unlimited combinational chaining.
    hls::ScheduleOptions noSeparate = base;
    noSeparate.separateCommFromMem = false; // Drop paper constraint (3).
    hls::ScheduleOptions twoPorts = base;
    twoPorts.memPortsPerState = 2;

    std::printf("%-16s %12llu %12llu %12llu %12llu\n", kernel->name().c_str(),
                static_cast<unsigned long long>(runConfig(*kernel, base)),
                static_cast<unsigned long long>(runConfig(*kernel, noChain)),
                static_cast<unsigned long long>(runConfig(*kernel, noSeparate)),
                static_cast<unsigned long long>(runConfig(*kernel, twoPorts)));
  }
  std::printf("\n'no-chain' removes the delay budget (optimistic frequency "
              "assumption);\n'no-constr3' allows FIFO handshakes to share a "
              "state with memory ops;\n'2 mem ports' doubles each worker's "
              "cache ports.\n");
  return 0;
}
