// Paper Appendix B.1 (scalability): the paper fixes 4 workers due to
// platform limits and argues scaling is bounded by (1) sequential-stage
// workload, (2) replicable-section overhead in the workers, and (3) memory
// system bandwidth. This sweep varies the worker count and reports
// speedups plus the stall breakdown that exposes those three limits.
#include "common.hpp"

int main() {
  using namespace cgpa;
  bench::banner("CGPA reproduction - worker-count scalability sweep");
  for (const kernels::Kernel* kernel : kernels::allKernels()) {
    std::printf("--- %s ---\n", kernel->name().c_str());
    std::printf("%8s %12s %10s %12s %12s %12s\n", "workers", "cycles",
                "speedup", "stallFifo", "stallMem", "correct");

    // MIPS reference for the speedup column.
    auto module = kernel->buildModule();
    kernels::Workload mipsWork =
        kernel->buildWorkload(kernels::WorkloadConfig{});
    const sim::MipsResult mips =
        sim::runMipsModel(*module->findFunction("kernel"), mipsWork.args,
                          *mipsWork.memory, sim::CacheConfig{});

    kernels::Workload refWork =
        kernel->buildWorkload(kernels::WorkloadConfig{});
    const std::uint64_t refReturn =
        kernel->runReference(*refWork.memory, refWork.args);

    for (int workers : {1, 2, 4, 8, 16}) {
      driver::CompileOptions compile;
      compile.partition.numWorkers = workers;
      const driver::CompiledAccelerator accel =
          driver::compileKernel(*kernel, driver::Flow::CgpaP1, compile);
      kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
      const sim::SimResult result = sim::simulateSystem(
          accel.pipelineModule, *work.memory, work.args, sim::SystemConfig{});
      const bool correct = result.returnValue == refReturn &&
                           work.memory->raw() == refWork.memory->raw();
      std::printf("%8d %12llu %9.2fx %12llu %12llu %12s\n", workers,
                  static_cast<unsigned long long>(result.cycles),
                  static_cast<double>(mips.cycles) /
                      static_cast<double>(result.cycles),
                  static_cast<unsigned long long>(result.stallFifo),
                  static_cast<unsigned long long>(result.stallMem),
                  correct ? "yes" : "NO");
    }
  }
  std::printf("\nPaper (B.1): scaling is bounded by the sequential stage "
              "(Amdahl), replicable\noverhead in workers, and shared-memory "
              "port contention — visible above as the\nspeedup flattening "
              "while stall cycles grow.\n");
  return 0;
}
