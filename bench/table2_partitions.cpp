// Regenerates paper Table 2: the pipeline partition CGPA discovers for
// each benchmark (and the P2 variant where applicable), plus the full
// per-stage SCC assignment.
#include "common.hpp"

int main() {
  using namespace cgpa;
  bench::banner("CGPA reproduction - Table 2: benchmark pipeline partitions");

  std::vector<driver::KernelEvaluation> evals;
  for (const kernels::Kernel* kernel : kernels::allKernels()) {
    driver::EvaluationOptions options;
    options.runP2 = true;
    evals.push_back(driver::evaluateKernel(*kernel, options));
  }
  std::printf("%s\n", driver::formatTable2(evals).c_str());

  std::printf("Expected shapes from the paper:\n");
  for (const kernels::Kernel* kernel : kernels::allKernels())
    std::printf("  %-16s %-6s (P2 %s)\n", kernel->name().c_str(),
                kernel->expectedShape().c_str(),
                kernel->supportsP2() ? "applicable" : "n/a");

  std::printf("\nDetailed partitions (P1):\n");
  for (const kernels::Kernel* kernel : kernels::allKernels()) {
    const driver::CompiledAccelerator accel = driver::compileKernel(
        *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
    std::printf("--- %s (%s) ---\n%s", kernel->name().c_str(),
                kernel->domain().c_str(), accel.plan.describe().c_str());
    std::printf("  channels: %zu, live-outs: %zu\n",
                accel.pipelineModule.channels.size(),
                accel.pipelineModule.liveouts.size());
  }
  return 0;
}
