// trace_check: standalone validator for the cgpac observability outputs,
// run by the `trace-smoke` ctest target after `trace-smoke-run` produces
// the files. Checks structural invariants rather than golden-matching
// exact cycle values, so it stays stable across performance-neutral
// simulator changes:
//
//   trace_check <trace.json> <stats.json> [trace.csv]
//
// Trace (Chrome trace-event JSON):
//   - document parses and has a non-empty `traceEvents` array
//   - every event carries ph/pid/ts; "X" spans have nonnegative dur
//   - per tid, "X" spans are sorted and non-overlapping (tracks tile)
//   - at least one counter ("C") event exists
// Stats (cgpa.simstats.v1):
//   - schema tag matches
//   - fifo.pushes == fifo.pops (every channel drains at join)
//   - per-channel pushes == pops, and their sums match the aggregates
//   - sum of per-engine active/stalled matches engineCycles aggregates
// CSV (optional): header starts with `cycle`, every row has the header's
// column count, and cycle values strictly increase.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "trace/json.hpp"

namespace {

using cgpa::trace::JsonValue;

int fail(const std::string& message) {
  std::fprintf(stderr, "trace_check: %s\n", message.c_str());
  return 1;
}

bool readFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return false;
  std::ostringstream text;
  text << in.rdbuf();
  out = text.str();
  return true;
}

const JsonValue* require(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr)
    std::fprintf(stderr, "trace_check: missing key '%s'\n", key.c_str());
  return v;
}

int checkTrace(const std::string& path) {
  std::string text;
  if (!readFile(path, text))
    return fail("cannot read " + path);
  std::string error;
  const auto doc = cgpa::trace::parseJson(text, &error);
  if (!doc)
    return fail(path + " does not parse: " + error);
  const JsonValue* events = require(*doc, "traceEvents");
  if (events == nullptr || !events->isArray())
    return fail(path + ": traceEvents is not an array");
  if (events->items().empty())
    return fail(path + ": traceEvents is empty");

  // Per-tid open interval tracking for "X" span tiling.
  struct TidState {
    double lastEnd = -1.0;
    std::size_t spans = 0;
  };
  std::map<std::uint64_t, TidState> tids;
  std::size_t counters = 0;
  for (const JsonValue& event : events->items()) {
    if (!event.isObject())
      return fail(path + ": non-object trace event");
    const JsonValue* ph = require(event, "ph");
    const JsonValue* pid = require(event, "pid");
    if (ph == nullptr || pid == nullptr)
      return 1;
    const std::string kind = ph->asString();
    if (kind == "M")
      continue; // Metadata events carry no ts.
    const JsonValue* ts = require(event, "ts");
    if (ts == nullptr)
      return 1;
    if (kind == "C") {
      ++counters;
      continue;
    }
    if (kind != "X")
      continue; // Instants ("i") need no further structure.
    const JsonValue* dur = require(event, "dur");
    const JsonValue* tid = require(event, "tid");
    if (dur == nullptr || tid == nullptr)
      return 1;
    if (dur->asDouble() < 0.0)
      return fail(path + ": span with negative dur");
    TidState& state = tids[tid->asUint()];
    if (ts->asDouble() < state.lastEnd)
      return fail(path + ": overlapping/unsorted spans on tid " +
                  std::to_string(tid->asUint()));
    state.lastEnd = ts->asDouble() + dur->asDouble();
    ++state.spans;
  }
  if (tids.empty())
    return fail(path + ": no engine spans");
  if (counters == 0)
    return fail(path + ": no counter events");
  std::size_t spanTotal = 0;
  for (const auto& [tid, state] : tids)
    spanTotal += state.spans;
  std::printf("trace_check: %s ok (%zu tracks, %zu spans, %zu counter "
              "samples)\n",
              path.c_str(), tids.size(), spanTotal, counters);
  return 0;
}

int checkStats(const std::string& path) {
  std::string text;
  if (!readFile(path, text))
    return fail("cannot read " + path);
  std::string error;
  const auto doc = cgpa::trace::parseJson(text, &error);
  if (!doc)
    return fail(path + " does not parse: " + error);
  const JsonValue* schema = require(*doc, "schema");
  if (schema == nullptr)
    return 1;
  if (schema->asString() != "cgpa.simstats.v1")
    return fail(path + ": unexpected schema '" + schema->asString() + "'");
  for (const char* key :
       {"cycles", "cache", "fifo", "stalls", "engineCycles", "engines",
        "channels", "opCounts"}) {
    if (require(*doc, key) == nullptr)
      return 1;
  }

  const JsonValue* fifo = doc->find("fifo");
  const std::uint64_t pushes = fifo->find("pushes")->asUint();
  const std::uint64_t pops = fifo->find("pops")->asUint();
  if (pushes != pops)
    return fail(path + ": fifo pushes != pops (" + std::to_string(pushes) +
                " vs " + std::to_string(pops) + ")");

  std::uint64_t channelPushes = 0;
  std::uint64_t channelPops = 0;
  for (const JsonValue& channel : doc->find("channels")->items()) {
    const std::uint64_t cp = channel.find("pushes")->asUint();
    const std::uint64_t cq = channel.find("pops")->asUint();
    if (cp != cq)
      return fail(path + ": channel pushes != pops");
    channelPushes += cp;
    channelPops += cq;
  }
  if (channelPushes != pushes || channelPops != pops)
    return fail(path + ": channel sums disagree with fifo aggregates");

  const JsonValue* engineCycles = doc->find("engineCycles");
  std::uint64_t active = 0;
  std::uint64_t stalled = 0;
  for (const JsonValue& engine : doc->find("engines")->items()) {
    active += engine.find("active")->asUint();
    stalled += engine.find("stalled")->asUint();
  }
  if (active != engineCycles->find("active")->asUint() ||
      stalled != engineCycles->find("stalled")->asUint())
    return fail(path + ": per-engine cycles disagree with aggregates");
  std::printf("trace_check: %s ok (%llu cycles, %llu fifo transfers)\n",
              path.c_str(),
              static_cast<unsigned long long>(doc->find("cycles")->asUint()),
              static_cast<unsigned long long>(pushes));
  return 0;
}

int checkCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return fail("cannot read " + path);
  std::string header;
  if (!std::getline(in, header) || header.rfind("cycle", 0) != 0)
    return fail(path + ": missing `cycle,...` header");
  const std::size_t columns =
      static_cast<std::size_t>(std::count(header.begin(), header.end(), ',')) +
      1;
  std::string line;
  std::size_t rows = 0;
  long long lastCycle = -1;
  while (std::getline(in, line)) {
    if (line.empty())
      continue;
    const std::size_t got =
        static_cast<std::size_t>(std::count(line.begin(), line.end(), ',')) +
        1;
    if (got != columns)
      return fail(path + ": row with " + std::to_string(got) +
                  " columns, header has " + std::to_string(columns));
    const long long cycle = std::atoll(line.c_str());
    if (cycle <= lastCycle)
      return fail(path + ": non-increasing cycle column");
    lastCycle = cycle;
    ++rows;
  }
  if (rows == 0)
    return fail(path + ": no data rows");
  std::printf("trace_check: %s ok (%zu rows x %zu columns)\n", path.c_str(),
              rows, columns);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: trace_check <trace.json> <stats.json> [trace.csv]\n");
    return 2;
  }
  if (const int rc = checkTrace(argv[1]); rc != 0)
    return rc;
  if (const int rc = checkStats(argv[2]); rc != 0)
    return rc;
  if (argc > 3) {
    if (const int rc = checkCsv(argv[3]); rc != 0)
      return rc;
  }
  return 0;
}
