// trace_check: standalone validator for the cgpac observability outputs,
// run by the `trace-smoke` ctest target after `trace-smoke-run` produces
// the files. Checks structural invariants rather than golden-matching
// exact cycle values, so it stays stable across performance-neutral
// simulator changes:
//
//   trace_check <trace.json> <stats.json> [trace.csv]
//   trace_check [--trace=F] [--stats=F] [--csv=F] [--remarks=F]
//               [--run=F] [--rundiff=F] [--job=F] [--jobresult=F]
//               [--serverstats=F] [--jobtrace=F]
//
// The flag form checks any subset of documents; the positional form keeps
// the legacy <trace> <stats> [csv] meaning.
//
// Trace (Chrome trace-event JSON):
//   - document parses and has a non-empty `traceEvents` array
//   - every event carries ph/pid/ts; "X" spans have nonnegative dur
//   - per tid, "X" spans are sorted and non-overlapping (tracks tile)
//   - at least one counter ("C") event exists
// Stats (cgpa.simstats.v1):
//   - schema tag matches
//   - `backend` names a resolved execution tier: interp or threaded
//   - fifo.pushes == fifo.pops (every channel drains at join)
//   - per-channel pushes == pops, and their sums match the aggregates
//   - sum of per-engine active/stalled matches engineCycles aggregates
//   - attribution ledger conserved: stalls.fifoFull + stalls.fifoEmpty ==
//     stalls.fifo, and per engine busy + stallMem + stallFifoFull +
//     stallFifoEmpty + stallDep == active + stalled, with the idle
//     remainder covering the whole run
// Run (cgpa.run.v1): schema tag, config/irHash presence, a well-formed
// embedded stats document (all of the checks above).
// Rundiff (cgpa.rundiff.v1; JSON or JSONL):
//   - schema tag; cycles.delta == cycles.b - cycles.a
//   - exactly six cause rows, each a known cause, internally consistent
//     and ranked by |delta|
//   - channel rows carry a name and a fifo cause
//   - a regressed diff names at least one channel+cause culprit
// Job (cgpa.job.v1; JSON or JSONL): schema tag; known op; op=run frames
// carry exactly one of kernel/spec, a known flow, positive
// workers/fifoDepth/scale, and a known backend tier.
// Jobresult (cgpa.jobresult.v1; JSON or JSONL):
//   - schema tag; id always present; ok is a bool
//   - ok=true run results carry cacheHit, a 16-hex irHash, a
//     remarks{count,digest} summary, cycles, correct, and a well-formed
//     embedded cgpa.simstats.v1 (all of the stats checks above — this is
//     what pins server output == `cgpac --stats-json` output)
//   - ok=true stats results embed a well-formed cgpa.serverstats.v1
//   - ok=false results embed a cgpa.failure.v1 with a code and message
//   - an embedded `trace` (trace:true requests) passes the jobtrace checks
// Jobtrace (cgpa.jobtrace.v1; JSON or JSONL):
//   - schema tag; all eight phases present, no unknown phases
//   - phase ledger conserved: the phase nanos sum to endToEndNanos
// Serverstats (cgpa.serverstats.v1):
//   - schema tag; workers >= 1; uptimeSeconds >= 0
//   - jobs ledger: completed + failed <= accepted, and
//     inflight == accepted - completed - failed
//   - cache ledger: hits + misses == lookups, entries <= capacity
//   - latency section: strictly increasing bucket boundaries; every
//     histogram (eight phases + kernel/spec/failed end-to-end) has
//     bucket counts summing to `count` and ordered p50 <= p90 <= p99;
//     on a drained snapshot kernel+spec counts == jobs.completed and
//     the failed count == jobs.failed
// CSV (optional): header starts with `cycle`, every row has the header's
// column count, and cycle values strictly increase.
// Remarks (cgpa.remarks.v1):
//   - schema tag matches; `count` equals the remarks array length
//   - every remark names a known pass and a non-empty rule/subject
//   - the `passes` tally agrees with the per-remark pass fields
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/argparse.hpp"
#include "trace/json.hpp"

namespace {

using cgpa::trace::JsonValue;

int fail(const std::string& message) {
  std::fprintf(stderr, "trace_check: %s\n", message.c_str());
  return 1;
}

bool readFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return false;
  std::ostringstream text;
  text << in.rdbuf();
  out = text.str();
  return true;
}

const JsonValue* require(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr)
    std::fprintf(stderr, "trace_check: missing key '%s'\n", key.c_str());
  return v;
}

int checkTrace(const std::string& path) {
  std::string text;
  if (!readFile(path, text))
    return fail("cannot read " + path);
  std::string error;
  const auto doc = cgpa::trace::parseJson(text, &error);
  if (!doc)
    return fail(path + " does not parse: " + error);
  const JsonValue* events = require(*doc, "traceEvents");
  if (events == nullptr || !events->isArray())
    return fail(path + ": traceEvents is not an array");
  if (events->items().empty())
    return fail(path + ": traceEvents is empty");

  // Per-tid open interval tracking for "X" span tiling.
  struct TidState {
    double lastEnd = -1.0;
    std::size_t spans = 0;
  };
  std::map<std::uint64_t, TidState> tids;
  std::size_t counters = 0;
  for (const JsonValue& event : events->items()) {
    if (!event.isObject())
      return fail(path + ": non-object trace event");
    const JsonValue* ph = require(event, "ph");
    const JsonValue* pid = require(event, "pid");
    if (ph == nullptr || pid == nullptr)
      return 1;
    const std::string kind = ph->asString();
    if (kind == "M")
      continue; // Metadata events carry no ts.
    const JsonValue* ts = require(event, "ts");
    if (ts == nullptr)
      return 1;
    if (kind == "C") {
      ++counters;
      continue;
    }
    if (kind != "X")
      continue; // Instants ("i") need no further structure.
    const JsonValue* dur = require(event, "dur");
    const JsonValue* tid = require(event, "tid");
    if (dur == nullptr || tid == nullptr)
      return 1;
    if (dur->asDouble() < 0.0)
      return fail(path + ": span with negative dur");
    TidState& state = tids[tid->asUint()];
    if (ts->asDouble() < state.lastEnd)
      return fail(path + ": overlapping/unsorted spans on tid " +
                  std::to_string(tid->asUint()));
    state.lastEnd = ts->asDouble() + dur->asDouble();
    ++state.spans;
  }
  if (tids.empty())
    return fail(path + ": no engine spans");
  if (counters == 0)
    return fail(path + ": no counter events");
  std::size_t spanTotal = 0;
  for (const auto& [tid, state] : tids)
    spanTotal += state.spans;
  std::printf("trace_check: %s ok (%zu tracks, %zu spans, %zu counter "
              "samples)\n",
              path.c_str(), tids.size(), spanTotal, counters);
  return 0;
}

/// Structural checks shared by --stats (a bare cgpa.simstats.v1 file) and
/// --run (the same document embedded under `stats`). `where` prefixes
/// every diagnostic.
int checkStatsDoc(const JsonValue& doc, const std::string& where) {
  const JsonValue* schema = require(doc, "schema");
  if (schema == nullptr)
    return 1;
  if (schema->asString() != "cgpa.simstats.v1")
    return fail(where + ": unexpected schema '" + schema->asString() + "'");
  for (const char* key :
       {"backend", "cycles", "cache", "fifo", "stalls", "engineCycles",
        "engines", "channels", "opCounts"}) {
    if (require(doc, key) == nullptr)
      return 1;
  }

  // The backend tag must be a *resolved* tier — "auto" may appear on the
  // command line but never in a result document.
  const std::string backend = doc.find("backend")->asString();
  if (backend != "interp" && backend != "threaded")
    return fail(where + ": backend '" + backend +
                "' is not a resolved execution tier (interp|threaded)");

  const JsonValue* fifo = doc.find("fifo");
  const std::uint64_t pushes = fifo->find("pushes")->asUint();
  const std::uint64_t pops = fifo->find("pops")->asUint();
  if (pushes != pops)
    return fail(where + ": fifo pushes != pops (" + std::to_string(pushes) +
                " vs " + std::to_string(pops) + ")");

  std::uint64_t channelPushes = 0;
  std::uint64_t channelPops = 0;
  std::uint64_t channelFullStalls = 0;
  std::uint64_t channelEmptyStalls = 0;
  for (const JsonValue& channel : doc.find("channels")->items()) {
    const std::uint64_t cp = channel.find("pushes")->asUint();
    const std::uint64_t cq = channel.find("pops")->asUint();
    if (cp != cq)
      return fail(where + ": channel pushes != pops");
    channelPushes += cp;
    channelPops += cq;
    const JsonValue* full = channel.find("stallFullCycles");
    const JsonValue* empty = channel.find("stallEmptyCycles");
    if (full == nullptr || empty == nullptr)
      return fail(where + ": channel without stall-cycle summaries");
    channelFullStalls += full->asUint();
    channelEmptyStalls += empty->asUint();
  }
  if (channelPushes != pushes || channelPops != pops)
    return fail(where + ": channel sums disagree with fifo aggregates");

  // Aggregate ledger: the legacy fifo stall count must equal its
  // full/empty split, and the per-channel summaries must account for
  // every attributed FIFO stall cycle.
  const JsonValue* stalls = doc.find("stalls");
  for (const char* key : {"mem", "fifo", "fifoFull", "fifoEmpty", "dep"}) {
    if (require(*stalls, key) == nullptr)
      return 1;
  }
  const std::uint64_t fifoFull = stalls->find("fifoFull")->asUint();
  const std::uint64_t fifoEmpty = stalls->find("fifoEmpty")->asUint();
  if (fifoFull + fifoEmpty != stalls->find("fifo")->asUint())
    return fail(where + ": stalls.fifoFull + stalls.fifoEmpty != stalls.fifo");
  if (channelFullStalls != fifoFull || channelEmptyStalls != fifoEmpty)
    return fail(where + ": channel stall summaries disagree with the "
                        "fifoFull/fifoEmpty aggregates");

  const JsonValue* engineCycles = doc.find("engineCycles");
  for (const char* key : {"active", "stalled", "busy", "idle"}) {
    if (require(*engineCycles, key) == nullptr)
      return 1;
  }
  const std::uint64_t runCycles = doc.find("cycles")->asUint();
  std::uint64_t active = 0;
  std::uint64_t stalled = 0;
  std::uint64_t busy = 0;
  std::uint64_t idle = 0;
  for (const JsonValue& engine : doc.find("engines")->items()) {
    for (const char* key : {"active", "stalled", "busy", "idle", "stallMem",
                            "stallFifoFull", "stallFifoEmpty", "stallDep"}) {
      if (require(engine, key) == nullptr)
        return 1;
    }
    const std::uint64_t engineActive = engine.find("active")->asUint();
    const std::uint64_t engineStalled = engine.find("stalled")->asUint();
    active += engineActive;
    stalled += engineStalled;
    busy += engine.find("busy")->asUint();
    idle += engine.find("idle")->asUint();
    // Attribution ledger: every live cycle carries exactly one cause, and
    // adding the idle remainder covers the whole run.
    const std::uint64_t causes = engine.find("busy")->asUint() +
                                 engine.find("stallMem")->asUint() +
                                 engine.find("stallFifoFull")->asUint() +
                                 engine.find("stallFifoEmpty")->asUint() +
                                 engine.find("stallDep")->asUint();
    const std::string who =
        "engine " + std::to_string(engine.find("id")->asUint());
    if (causes != engineActive + engineStalled)
      return fail(where + ": " + who + " ledger not conserved (causes " +
                  std::to_string(causes) + " != live cycles " +
                  std::to_string(engineActive + engineStalled) + ")");
    if (causes + engine.find("idle")->asUint() != runCycles)
      return fail(where + ": " + who + " ledger + idle != run cycles");
  }
  if (active != engineCycles->find("active")->asUint() ||
      stalled != engineCycles->find("stalled")->asUint())
    return fail(where + ": per-engine cycles disagree with aggregates");
  if (busy != engineCycles->find("busy")->asUint() ||
      idle != engineCycles->find("idle")->asUint())
    return fail(where + ": per-engine busy/idle disagree with aggregates");
  return 0;
}

int checkStats(const std::string& path) {
  std::string text;
  if (!readFile(path, text))
    return fail("cannot read " + path);
  std::string error;
  const auto doc = cgpa::trace::parseJson(text, &error);
  if (!doc)
    return fail(path + " does not parse: " + error);
  if (const int rc = checkStatsDoc(*doc, path); rc != 0)
    return rc;
  std::printf("trace_check: %s ok (%llu cycles, %llu fifo transfers, %s "
              "tier)\n",
              path.c_str(),
              static_cast<unsigned long long>(doc->find("cycles")->asUint()),
              static_cast<unsigned long long>(
                  doc->find("fifo")->find("pushes")->asUint()),
              doc->find("backend")->asString().c_str());
  return 0;
}

/// cgpa.run.v1 archive record: identity fields plus a well-formed
/// embedded stats document.
int checkRunDoc(const JsonValue& doc, const std::string& where) {
  const JsonValue* schema = require(doc, "schema");
  if (schema == nullptr)
    return 1;
  if (schema->asString() != "cgpa.run.v1")
    return fail(where + ": unexpected schema '" + schema->asString() + "'");
  for (const char* key : {"kernel", "flow", "config", "correct", "irHash",
                          "stats"}) {
    if (require(doc, key) == nullptr)
      return 1;
  }
  const std::string irHash = doc.find("irHash")->asString();
  if (irHash.size() != 16 ||
      irHash.find_first_not_of("0123456789abcdef") != std::string::npos)
    return fail(where + ": irHash '" + irHash +
                "' is not 16 lowercase hex digits");
  const JsonValue* config = doc.find("config");
  for (const char* key : {"workers", "fifoDepth", "scale", "seed",
                          "backend"}) {
    if (require(*config, key) == nullptr)
      return 1;
  }
  return checkStatsDoc(*doc.find("stats"), where + ": stats");
}

int checkRun(const std::string& path) {
  std::string text;
  if (!readFile(path, text))
    return fail("cannot read " + path);
  std::string error;
  const auto doc = cgpa::trace::parseJson(text, &error);
  if (doc) {
    if (const int rc = checkRunDoc(*doc, path); rc != 0)
      return rc;
    std::printf("trace_check: %s ok (run record, %s %s)\n", path.c_str(),
                doc->find("kernel")->asString().c_str(),
                doc->find("flow")->asString().c_str());
    return 0;
  }
  // JSONL archive: one record per line.
  std::istringstream lines(text);
  std::string line;
  std::size_t lineNo = 0;
  std::size_t records = 0;
  while (std::getline(lines, line)) {
    ++lineNo;
    if (line.empty())
      continue;
    const auto record = cgpa::trace::parseJson(line, &error);
    if (!record)
      return fail(path + ":" + std::to_string(lineNo) +
                  " does not parse: " + error);
    if (const int rc = checkRunDoc(
            *record, path + ":" + std::to_string(lineNo));
        rc != 0)
      return rc;
    ++records;
  }
  if (records == 0)
    return fail(path + ": no run records");
  std::printf("trace_check: %s ok (%zu run records)\n", path.c_str(),
              records);
  return 0;
}

/// cgpa.rundiff.v1: the differential report cgpa_diff emits. Beyond
/// structural consistency this encodes the acceptance rule for the CI
/// gate — a regressed diff is only actionable if it names a culprit, so
/// `regressed: true` requires at least one channel row with a name and a
/// fifo cause.
int checkRunDiffDoc(const JsonValue& doc, const std::string& where) {
  const JsonValue* schema = require(doc, "schema");
  if (schema == nullptr)
    return 1;
  if (schema->asString() != "cgpa.rundiff.v1")
    return fail(where + ": unexpected schema '" + schema->asString() + "'");
  for (const char* key :
       {"threshold", "a", "b", "irChanged", "cycles", "regressed", "causes",
        "stages", "channels"}) {
    if (require(doc, key) == nullptr)
      return 1;
  }

  const JsonValue* cycles = doc.find("cycles");
  for (const char* key : {"a", "b", "delta", "ratio"}) {
    if (require(*cycles, key) == nullptr)
      return 1;
  }
  const double cyclesA = cycles->find("a")->asDouble();
  const double cyclesB = cycles->find("b")->asDouble();
  if (cycles->find("delta")->asDouble() != cyclesB - cyclesA)
    return fail(where + ": cycles.delta != cycles.b - cycles.a");

  const std::vector<std::string> knownCauses = {
      "busy", "stallMem", "stallFifoFull", "stallFifoEmpty", "stallDep",
      "idle"};
  const JsonValue* causes = doc.find("causes");
  if (!causes->isArray() || causes->items().size() != knownCauses.size())
    return fail(where + ": causes must list all " +
                std::to_string(knownCauses.size()) + " attribution rows");
  std::vector<std::string> seen;
  double lastMagnitude = -1.0;
  bool first = true;
  for (const JsonValue& row : causes->items()) {
    for (const char* key : {"cause", "a", "b", "delta"}) {
      if (require(row, key) == nullptr)
        return 1;
    }
    const std::string cause = row.find("cause")->asString();
    if (std::find(knownCauses.begin(), knownCauses.end(), cause) ==
        knownCauses.end())
      return fail(where + ": unknown cause '" + cause + "'");
    if (std::find(seen.begin(), seen.end(), cause) != seen.end())
      return fail(where + ": duplicate cause row '" + cause + "'");
    seen.push_back(cause);
    const double delta = row.find("delta")->asDouble();
    if (delta != row.find("b")->asDouble() - row.find("a")->asDouble())
      return fail(where + ": cause '" + cause + "' delta inconsistent");
    const double magnitude = delta < 0.0 ? -delta : delta;
    if (!first && magnitude > lastMagnitude)
      return fail(where + ": cause rows are not ranked by |delta|");
    lastMagnitude = magnitude;
    first = false;
  }

  std::size_t namedFifoCulprits = 0;
  for (const JsonValue& row : doc.find("channels")->items()) {
    for (const char* key : {"id", "name", "cause", "a", "b", "delta"}) {
      if (require(row, key) == nullptr)
        return 1;
    }
    const std::string cause = row.find("cause")->asString();
    if (cause != "stallFifoFull" && cause != "stallFifoEmpty")
      return fail(where + ": channel row with non-fifo cause '" + cause +
                  "'");
    if (row.find("delta")->asDouble() == 0.0)
      return fail(where + ": channel row with zero delta");
    if (!row.find("name")->asString().empty())
      ++namedFifoCulprits;
  }
  for (const JsonValue& row : doc.find("stages")->items()) {
    for (const char* key : {"stage", "delta", "causes"}) {
      if (require(row, key) == nullptr)
        return 1;
    }
  }
  if (doc.find("regressed")->asBool() && namedFifoCulprits == 0)
    return fail(where + ": regressed diff does not name any channel+cause "
                        "culprit");
  return 0;
}

int checkRunDiff(const std::string& path) {
  std::string text;
  if (!readFile(path, text))
    return fail("cannot read " + path);
  std::string error;
  const auto doc = cgpa::trace::parseJson(text, &error);
  if (doc) {
    if (const int rc = checkRunDiffDoc(*doc, path); rc != 0)
      return rc;
    std::printf("trace_check: %s ok (rundiff, %s)\n", path.c_str(),
                doc->find("regressed")->asBool() ? "regressed" : "clean");
    return 0;
  }
  // JSONL report from an archive diff: one rundiff per line.
  std::istringstream lines(text);
  std::string line;
  std::size_t lineNo = 0;
  std::size_t reports = 0;
  while (std::getline(lines, line)) {
    ++lineNo;
    if (line.empty())
      continue;
    const auto report = cgpa::trace::parseJson(line, &error);
    if (!report)
      return fail(path + ":" + std::to_string(lineNo) +
                  " does not parse: " + error);
    if (const int rc = checkRunDiffDoc(
            *report, path + ":" + std::to_string(lineNo));
        rc != 0)
      return rc;
    ++reports;
  }
  if (reports == 0)
    return fail(path + ": no rundiff reports");
  std::printf("trace_check: %s ok (%zu rundiff reports)\n", path.c_str(),
              reports);
  return 0;
}

int checkCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return fail("cannot read " + path);
  std::string header;
  if (!std::getline(in, header) || header.rfind("cycle", 0) != 0)
    return fail(path + ": missing `cycle,...` header");
  const std::size_t columns =
      static_cast<std::size_t>(std::count(header.begin(), header.end(), ',')) +
      1;
  std::string line;
  std::size_t rows = 0;
  long long lastCycle = -1;
  while (std::getline(in, line)) {
    if (line.empty())
      continue;
    const std::size_t got =
        static_cast<std::size_t>(std::count(line.begin(), line.end(), ',')) +
        1;
    if (got != columns)
      return fail(path + ": row with " + std::to_string(got) +
                  " columns, header has " + std::to_string(columns));
    const long long cycle = std::atoll(line.c_str());
    if (cycle <= lastCycle)
      return fail(path + ": non-increasing cycle column");
    lastCycle = cycle;
    ++rows;
  }
  if (rows == 0)
    return fail(path + ": no data rows");
  std::printf("trace_check: %s ok (%zu rows x %zu columns)\n", path.c_str(),
              rows, columns);
  return 0;
}

int checkRemarks(const std::string& path) {
  std::string text;
  if (!readFile(path, text))
    return fail("cannot read " + path);
  std::string error;
  const auto doc = cgpa::trace::parseJson(text, &error);
  if (!doc)
    return fail(path + " does not parse: " + error);
  const JsonValue* schema = require(*doc, "schema");
  if (schema == nullptr)
    return 1;
  if (schema->asString() != "cgpa.remarks.v1")
    return fail(path + ": unexpected schema '" + schema->asString() + "'");
  const JsonValue* count = require(*doc, "count");
  const JsonValue* passes = require(*doc, "passes");
  const JsonValue* remarks = require(*doc, "remarks");
  if (count == nullptr || passes == nullptr || remarks == nullptr)
    return 1;
  if (!remarks->isArray())
    return fail(path + ": remarks is not an array");
  if (count->asUint() != remarks->items().size())
    return fail(path + ": count " + std::to_string(count->asUint()) +
                " != remarks length " +
                std::to_string(remarks->items().size()));

  // Stable pass vocabulary: compile-pipeline stages in flow order. A new
  // pass name is a schema change, not a silent addition.
  const std::vector<std::string> knownPasses = {"pdg", "scc", "partition",
                                                "transform", "sdc"};
  std::map<std::string, std::uint64_t> tally;
  for (const JsonValue& remark : remarks->items()) {
    if (!remark.isObject())
      return fail(path + ": non-object remark");
    for (const char* key : {"pass", "rule", "subject"}) {
      const JsonValue* field = require(remark, key);
      if (field == nullptr)
        return 1;
      if (field->asString().empty())
        return fail(path + ": remark with empty '" + key + "'");
    }
    const std::string pass = remark.find("pass")->asString();
    if (std::find(knownPasses.begin(), knownPasses.end(), pass) ==
        knownPasses.end())
      return fail(path + ": unknown pass '" + pass + "'");
    ++tally[pass];
  }
  std::uint64_t passTotal = 0;
  for (const auto& [name, value] : passes->members()) {
    const std::uint64_t declared = value.asUint();
    passTotal += declared;
    if (tally[name] != declared)
      return fail(path + ": passes tally for '" + name + "' is " +
                  std::to_string(declared) + ", remarks have " +
                  std::to_string(tally[name]));
  }
  if (passTotal != remarks->items().size())
    return fail(path + ": passes tally does not cover every remark");
  std::printf("trace_check: %s ok (%zu remarks across %zu passes)\n",
              path.c_str(), remarks->items().size(), tally.size());
  return 0;
}

/// cgpa.job.v1 request frame (the cgpad wire protocol, serve/job.hpp).
int checkJobDoc(const JsonValue& doc, const std::string& where) {
  const JsonValue* schema = require(doc, "schema");
  if (schema == nullptr)
    return 1;
  if (schema->asString() != "cgpa.job.v1")
    return fail(where + ": unexpected schema '" + schema->asString() + "'");
  std::string op = "run";
  if (const JsonValue* v = doc.find("op"); v != nullptr)
    op = v->asString();
  if (op != "run" && op != "stats" && op != "shutdown")
    return fail(where + ": unknown op '" + op + "'");
  if (op != "run")
    return 0;

  const bool hasKernel =
      doc.find("kernel") != nullptr && !doc.find("kernel")->asString().empty();
  const bool hasSpec =
      doc.find("spec") != nullptr && !doc.find("spec")->asString().empty();
  if (hasKernel == hasSpec)
    return fail(where + ": op=run needs exactly one of kernel/spec");
  if (const JsonValue* flow = doc.find("flow"); flow != nullptr) {
    const std::string name = flow->asString();
    if (name != "p1" && name != "p2" && name != "legup")
      return fail(where + ": unknown flow '" + name + "'");
  }
  for (const char* key : {"workers", "fifoDepth", "scale"}) {
    const JsonValue* v = doc.find(key);
    if (v != nullptr && v->asDouble() < 1.0)
      return fail(where + ": " + key + " must be a positive integer");
  }
  if (const JsonValue* backend = doc.find("backend"); backend != nullptr) {
    const std::string tier = backend->asString();
    if (tier != "interp" && tier != "threaded" && tier != "auto")
      return fail(where + ": unknown backend '" + tier + "'");
  }
  if (const JsonValue* traceFlag = doc.find("trace");
      traceFlag != nullptr &&
      traceFlag->kind() != JsonValue::Kind::Bool)
    return fail(where + ": trace must be a boolean");
  return 0;
}

/// The eight cgpa.jobtrace.v1 phases, in ledger order (serve/job_trace.hpp).
constexpr const char* kJobPhases[] = {
    "queueWait", "parse",    "cacheLookup", "compile",
    "planBuild", "simulate", "verify",      "serialize"};

/// cgpa.jobtrace.v1 phase ledger: all eight phases present (and no
/// others), every duration a nonnegative integer, and the conservation
/// pin Σ phases == endToEndNanos.
int checkJobTraceDoc(const JsonValue& doc, const std::string& where) {
  const JsonValue* schema = require(doc, "schema");
  if (schema == nullptr)
    return 1;
  if (schema->asString() != "cgpa.jobtrace.v1")
    return fail(where + ": unexpected schema '" + schema->asString() + "'");
  const JsonValue* endToEnd = require(doc, "endToEndNanos");
  const JsonValue* phases = require(doc, "phases");
  if (endToEnd == nullptr || phases == nullptr)
    return 1;
  if (!phases->isObject())
    return fail(where + ": phases is not an object");
  std::uint64_t sum = 0;
  for (const char* name : kJobPhases) {
    const JsonValue* v = require(*phases, name);
    if (v == nullptr)
      return 1;
    if (!v->isNumber())
      return fail(where + ": phase '" + name + "' is not a number");
    sum += v->asUint();
  }
  for (const auto& [name, value] : phases->members()) {
    (void)value;
    if (std::find_if(std::begin(kJobPhases), std::end(kJobPhases),
                     [&name](const char* known) { return name == known; }) ==
        std::end(kJobPhases))
      return fail(where + ": unknown phase '" + name + "'");
  }
  if (sum != endToEnd->asUint())
    return fail(where + ": phase sum " + std::to_string(sum) +
                " != endToEndNanos " + std::to_string(endToEnd->asUint()));
  return 0;
}

/// One latency histogram inside the serverstats `latency` section:
/// bucket vector of the declared width, Σ buckets == count, and
/// monotone derived percentiles.
int checkHistogramDoc(const JsonValue& hist, std::size_t bucketCount,
                      const std::string& where) {
  for (const char* key :
       {"count", "sumNanos", "p50Nanos", "p90Nanos", "p99Nanos", "buckets"}) {
    if (require(hist, key) == nullptr)
      return 1;
  }
  const JsonValue* buckets = hist.find("buckets");
  if (!buckets->isArray())
    return fail(where + ": buckets is not an array");
  if (buckets->items().size() != bucketCount)
    return fail(where + ": " + std::to_string(buckets->items().size()) +
                " buckets, boundaries imply " + std::to_string(bucketCount));
  std::uint64_t total = 0;
  for (const JsonValue& bucket : buckets->items())
    total += bucket.asUint();
  if (total != hist.find("count")->asUint())
    return fail(where + ": bucket sum " + std::to_string(total) +
                " != count " +
                std::to_string(hist.find("count")->asUint()));
  const double p50 = hist.find("p50Nanos")->asDouble();
  const double p90 = hist.find("p90Nanos")->asDouble();
  const double p99 = hist.find("p99Nanos")->asDouble();
  if (p50 < 0 || p50 > p90 || p90 > p99)
    return fail(where + ": percentiles not monotone (p50 " +
                std::to_string(p50) + ", p90 " + std::to_string(p90) +
                ", p99 " + std::to_string(p99) + ")");
  return 0;
}

/// cgpa.serverstats.v1 snapshot: the conservation ledgers the server
/// guarantees — the jobs ledger states its own inflight balance, the
/// cache ledger balances in every snapshot (the server derives lookups
/// as hits + misses), every latency histogram's buckets sum to its
/// count, and the end-to-end class counts tile completed/failed exactly
/// (every snapshot this validator sees is drained: ordered-mode op=stats
/// flushes pending jobs first and final snapshots are written after the
/// worker pool joins).
int checkServerStatsDoc(const JsonValue& doc, const std::string& where) {
  const JsonValue* schema = require(doc, "schema");
  if (schema == nullptr)
    return 1;
  if (schema->asString() != "cgpa.serverstats.v1")
    return fail(where + ": unexpected schema '" + schema->asString() + "'");
  for (const char* key : {"workers", "uptimeSeconds", "jobs", "cache",
                          "latency"}) {
    if (require(doc, key) == nullptr)
      return 1;
  }
  if (doc.find("workers")->asUint() < 1)
    return fail(where + ": workers must be >= 1");
  if (doc.find("uptimeSeconds")->asDouble() < 0)
    return fail(where + ": uptimeSeconds is negative");
  const JsonValue* jobs = doc.find("jobs");
  for (const char* key : {"accepted", "completed", "failed", "inflight",
                          "protocolErrors"}) {
    if (require(*jobs, key) == nullptr)
      return 1;
  }
  const std::uint64_t accepted = jobs->find("accepted")->asUint();
  const std::uint64_t completed = jobs->find("completed")->asUint();
  const std::uint64_t failed = jobs->find("failed")->asUint();
  if (completed + failed > accepted)
    return fail(where + ": jobs.completed + jobs.failed > jobs.accepted");
  if (jobs->find("inflight")->asUint() != accepted - completed - failed)
    return fail(where + ": jobs.inflight != accepted - completed - failed");
  const JsonValue* cache = doc.find("cache");
  for (const char* key : {"capacity", "entries", "lookups", "hits", "misses",
                          "evictions"}) {
    if (require(*cache, key) == nullptr)
      return 1;
  }
  if (cache->find("hits")->asUint() + cache->find("misses")->asUint() !=
      cache->find("lookups")->asUint())
    return fail(where + ": cache.hits + cache.misses != cache.lookups");
  if (cache->find("entries")->asUint() > cache->find("capacity")->asUint())
    return fail(where + ": cache.entries > cache.capacity");

  const JsonValue* latency = doc.find("latency");
  const JsonValue* boundaries = require(*latency, "boundariesNanos");
  const JsonValue* phases = require(*latency, "phases");
  const JsonValue* endToEnd = require(*latency, "endToEnd");
  if (boundaries == nullptr || phases == nullptr || endToEnd == nullptr)
    return 1;
  if (!boundaries->isArray() || boundaries->items().empty())
    return fail(where + ": latency.boundariesNanos is not a non-empty array");
  std::uint64_t previous = 0;
  for (const JsonValue& boundary : boundaries->items()) {
    const std::uint64_t value = boundary.asUint();
    if (value <= previous)
      return fail(where + ": latency boundaries not strictly increasing");
    previous = value;
  }
  const std::size_t bucketCount = boundaries->items().size() + 1;
  if (!phases->isObject())
    return fail(where + ": latency.phases is not an object");
  for (const char* name : kJobPhases) {
    const JsonValue* hist = require(*phases, name);
    if (hist == nullptr)
      return 1;
    if (const int rc = checkHistogramDoc(
            *hist, bucketCount, where + ": latency.phases." + name);
        rc != 0)
      return rc;
  }
  std::uint64_t classCounts[3] = {0, 0, 0};
  const char* const classes[3] = {"kernel", "spec", "failed"};
  for (std::size_t i = 0; i < 3; ++i) {
    const JsonValue* hist = require(*endToEnd, classes[i]);
    if (hist == nullptr)
      return 1;
    if (const int rc = checkHistogramDoc(
            *hist, bucketCount, where + ": latency.endToEnd." + classes[i]);
        rc != 0)
      return rc;
    classCounts[i] = hist->find("count")->asUint();
  }
  // Drained-snapshot equalities: every finished job landed in exactly one
  // end-to-end class histogram.
  if (classCounts[0] + classCounts[1] != completed)
    return fail(where + ": endToEnd kernel+spec counts " +
                std::to_string(classCounts[0] + classCounts[1]) +
                " != jobs.completed " + std::to_string(completed));
  if (classCounts[2] != failed)
    return fail(where + ": endToEnd failed count " +
                std::to_string(classCounts[2]) + " != jobs.failed " +
                std::to_string(failed));
  return 0;
}

/// cgpa.jobresult.v1 response frame. An ok=true run result embeds the full
/// cgpa.simstats.v1 document, which gets the complete stats check — the
/// serve-smoke fixture relies on this to pin "server responses carry the
/// same stats document the CLI writes".
int checkJobResultDoc(const JsonValue& doc, const std::string& where) {
  const JsonValue* schema = require(doc, "schema");
  if (schema == nullptr)
    return 1;
  if (schema->asString() != "cgpa.jobresult.v1")
    return fail(where + ": unexpected schema '" + schema->asString() + "'");
  const JsonValue* ok = require(doc, "ok");
  if (ok == nullptr || require(doc, "id") == nullptr)
    return 1;
  // Optional phase ledger (trace:true requests); present on failures too.
  if (const JsonValue* traceDoc = doc.find("trace"); traceDoc != nullptr)
    if (const int rc = checkJobTraceDoc(*traceDoc, where + ": trace");
        rc != 0)
      return rc;

  if (!ok->asBool()) {
    const JsonValue* error = require(doc, "error");
    if (error == nullptr)
      return 1;
    const JsonValue* errSchema = require(*error, "schema");
    if (errSchema == nullptr)
      return 1;
    if (errSchema->asString() != "cgpa.failure.v1")
      return fail(where + ": error is not a cgpa.failure.v1 document");
    if (require(*error, "code") == nullptr ||
        require(*error, "message") == nullptr)
      return 1;
    if (error->find("code")->asString().empty())
      return fail(where + ": failure document with empty code");
    return 0;
  }

  if (const JsonValue* serverStats = doc.find("serverStats");
      serverStats != nullptr)
    return checkServerStatsDoc(*serverStats, where + ": serverStats");
  if (doc.find("stats") == nullptr)
    return 0; // op=shutdown ack: just the schema/id/ok shell.

  for (const char* key :
       {"cacheHit", "irHash", "remarks", "cycles", "correct"}) {
    if (require(doc, key) == nullptr)
      return 1;
  }
  const std::string irHash = doc.find("irHash")->asString();
  if (irHash.size() != 16 ||
      irHash.find_first_not_of("0123456789abcdef") != std::string::npos)
    return fail(where + ": irHash '" + irHash +
                "' is not 16 lowercase hex digits");
  const JsonValue* remarks = doc.find("remarks");
  if (require(*remarks, "count") == nullptr ||
      require(*remarks, "digest") == nullptr)
    return 1;
  const std::string digest = remarks->find("digest")->asString();
  if (digest.size() != 16 ||
      digest.find_first_not_of("0123456789abcdef") != std::string::npos)
    return fail(where + ": remarks.digest is not 16 lowercase hex digits");
  const JsonValue* stats = doc.find("stats");
  if (const int rc = checkStatsDoc(*stats, where + ": stats"); rc != 0)
    return rc;
  if (doc.find("cycles")->asUint() != stats->find("cycles")->asUint())
    return fail(where + ": top-level cycles disagree with stats.cycles");
  return 0;
}

/// Shared JSON-or-JSONL driver for the serve documents: a whole-file parse
/// is treated as one document, otherwise each non-empty line must parse
/// and check on its own.
int checkDocFile(const std::string& path, const std::string& kindName,
                 int (*checkDoc)(const JsonValue&, const std::string&)) {
  std::string text;
  if (!readFile(path, text))
    return fail("cannot read " + path);
  std::string error;
  const auto doc = cgpa::trace::parseJson(text, &error);
  if (doc) {
    if (const int rc = checkDoc(*doc, path); rc != 0)
      return rc;
    std::printf("trace_check: %s ok (%s)\n", path.c_str(), kindName.c_str());
    return 0;
  }
  std::istringstream lines(text);
  std::string line;
  std::size_t lineNo = 0;
  std::size_t records = 0;
  while (std::getline(lines, line)) {
    ++lineNo;
    if (line.empty())
      continue;
    const auto record = cgpa::trace::parseJson(line, &error);
    if (!record)
      return fail(path + ":" + std::to_string(lineNo) +
                  " does not parse: " + error);
    if (const int rc =
            checkDoc(*record, path + ":" + std::to_string(lineNo));
        rc != 0)
      return rc;
    ++records;
  }
  if (records == 0)
    return fail(path + ": no " + kindName + " records");
  std::printf("trace_check: %s ok (%zu %s records)\n", path.c_str(), records,
              kindName.c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: trace_check <trace.json> <stats.json> [trace.csv]\n"
               "       trace_check [--trace=F] [--stats=F] [--csv=F] "
               "[--remarks=F]\n"
               "                   [--run=F] [--rundiff=F] [--job=F]\n"
               "                   [--jobresult=F] [--serverstats=F]\n"
               "                   [--jobtrace=F]\n");
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  cgpa::support::ArgParser args(argc, argv);
  std::string tracePath;
  std::string statsPath;
  std::string csvPath;
  std::string remarksPath;
  std::vector<std::string> runPaths;
  std::vector<std::string> runDiffPaths;
  std::vector<std::string> jobPaths;
  std::vector<std::string> jobResultPaths;
  std::vector<std::string> serverStatsPaths;
  std::vector<std::string> jobTracePaths;
  std::vector<std::string> positional;
  auto take = [&args](std::string& out) -> bool {
    cgpa::Expected<std::string> v = args.value();
    if (!v.ok()) {
      std::fprintf(stderr, "trace_check: %s\n", v.status().toString().c_str());
      return false;
    }
    out = *v;
    return true;
  };
  while (!args.done()) {
    bool ok = true;
    if (args.matchFlag("trace"))
      ok = take(tracePath);
    else if (args.matchFlag("stats"))
      ok = take(statsPath);
    else if (args.matchFlag("csv"))
      ok = take(csvPath);
    else if (args.matchFlag("remarks"))
      ok = take(remarksPath);
    else if (args.matchFlag("run")) {
      // May repeat: each occurrence adds one file to check.
      std::string path;
      if ((ok = take(path)))
        runPaths.push_back(path);
    } else if (args.matchFlag("rundiff")) {
      std::string path;
      if ((ok = take(path)))
        runDiffPaths.push_back(path);
    } else if (args.matchFlag("job")) {
      std::string path;
      if ((ok = take(path)))
        jobPaths.push_back(path);
    } else if (args.matchFlag("jobresult")) {
      std::string path;
      if ((ok = take(path)))
        jobResultPaths.push_back(path);
    } else if (args.matchFlag("serverstats")) {
      std::string path;
      if ((ok = take(path)))
        serverStatsPaths.push_back(path);
    } else if (args.matchFlag("jobtrace")) {
      std::string path;
      if ((ok = take(path)))
        jobTracePaths.push_back(path);
    }
    else if (args.isFlag()) {
      std::fprintf(stderr, "trace_check: %s\n",
                   args.unknown().toString().c_str());
      return usage();
    } else {
      positional.push_back(args.positional());
    }
    if (!ok)
      return usage();
  }
  if (!positional.empty()) {
    // Legacy positional form: <trace> <stats> [csv].
    if (positional.size() < 2 || positional.size() > 3)
      return usage();
    tracePath = positional[0];
    statsPath = positional[1];
    if (positional.size() > 2)
      csvPath = positional[2];
  }
  if (tracePath.empty() && statsPath.empty() && csvPath.empty() &&
      remarksPath.empty() && runPaths.empty() && runDiffPaths.empty() &&
      jobPaths.empty() && jobResultPaths.empty() &&
      serverStatsPaths.empty() && jobTracePaths.empty())
    return usage();

  if (!tracePath.empty())
    if (const int rc = checkTrace(tracePath); rc != 0)
      return rc;
  if (!statsPath.empty())
    if (const int rc = checkStats(statsPath); rc != 0)
      return rc;
  if (!csvPath.empty())
    if (const int rc = checkCsv(csvPath); rc != 0)
      return rc;
  if (!remarksPath.empty())
    if (const int rc = checkRemarks(remarksPath); rc != 0)
      return rc;
  for (const std::string& path : runPaths)
    if (const int rc = checkRun(path); rc != 0)
      return rc;
  for (const std::string& path : runDiffPaths)
    if (const int rc = checkRunDiff(path); rc != 0)
      return rc;
  for (const std::string& path : jobPaths)
    if (const int rc = checkDocFile(path, "job", checkJobDoc); rc != 0)
      return rc;
  for (const std::string& path : jobResultPaths)
    if (const int rc = checkDocFile(path, "jobresult", checkJobResultDoc);
        rc != 0)
      return rc;
  for (const std::string& path : serverStatsPaths)
    if (const int rc =
            checkDocFile(path, "serverstats", checkServerStatsDoc);
        rc != 0)
      return rc;
  for (const std::string& path : jobTracePaths)
    if (const int rc = checkDocFile(path, "jobtrace", checkJobTraceDoc);
        rc != 0)
      return rc;
  return 0;
}
