// cgpa_sweep: populate a cgpa.run.v1 JSONL archive by running a
// configuration grid over the paper kernels.
//
//   cgpa_sweep --out sweep.jsonl                       # default grid
//   cgpa_sweep --out a.jsonl --kernels em3d,ks --workers 1,2,4,8
//   cgpa_sweep --out b.jsonl --fifo-depths 4,16 --flows p1
//
// Each grid point compiles the kernel, simulates it, validates the result
// against the native reference, and appends one cgpa.run.v1 record
// (trace/run_record.hpp) to the archive. Two archives produced by the
// same grid diff pairwise with cgpa_diff — the CI regression workflow.
//
// Grid points whose flow the kernel does not support (p2 on
// non-replicable kernels) are skipped; simulation failures are reported
// and the sweep continues. Exit 0 when every attempted run produced a
// record, 1 otherwise.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cgpa/driver.hpp"
#include "ir/printer.hpp"
#include "support/argparse.hpp"
#include "trace/remarks.hpp"
#include "trace/run_record.hpp"

namespace {

using namespace cgpa;

struct Options {
  std::string outFile;
  std::vector<std::string> kernels; ///< Empty = all paper kernels.
  std::vector<std::string> flows = {"p1", "p2"};
  std::vector<int> workers = {1, 2, 4};
  std::vector<int> fifoDepths = {8, 16};
  std::vector<std::string> backends = {"threaded"};
  int scale = 1;
  std::uint64_t seed = 42;
  std::uint64_t maxCycles = 0; ///< 0 = sim::kDefaultMaxCycles.
  bool quiet = false;
  bool help = false;
};

void usage() {
  std::printf(
      "cgpa_sweep — archive a configuration grid as cgpa.run.v1 JSONL\n"
      "\n"
      "  --out FILE          archive to write (required; truncated)\n"
      "  --kernels a,b,c     kernels to sweep (default: all five)\n"
      "  --flows p1,p2       flows to sweep (default p1,p2; p2 skipped\n"
      "                      where the kernel is not replicable)\n"
      "  --workers 1,2,4     worker counts to sweep\n"
      "  --fifo-depths 8,16  FIFO depths to sweep\n"
      "  --backends B,...    sim tiers: interp and/or threaded\n"
      "                      (default threaded)\n"
      "  --scale N           workload scale (default 1)\n"
      "  --seed N            workload seed (default 42)\n"
      "  --max-cycles N      simulation cycle cap\n"
      "  --quiet             one summary line instead of one per run\n"
      "  --help              this text\n");
}

std::vector<std::string> splitList(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!item.empty())
      out.push_back(item);
    if (comma == std::string::npos)
      break;
    start = comma + 1;
  }
  return out;
}

Status parseIntList(const std::string& text, const char* flag,
                    std::vector<int>& out) {
  out.clear();
  for (const std::string& item : splitList(text)) {
    try {
      out.push_back(std::stoi(item));
    } catch (...) {
      return Status::error(ErrorCode::InvalidArgument,
                           std::string(flag) + ": bad integer '" + item +
                               "'");
    }
  }
  if (out.empty())
    return Status::error(ErrorCode::InvalidArgument,
                         std::string(flag) + ": empty list");
  return Status::success();
}

Status parseArgs(int argc, char** argv, Options& options) {
  support::ArgParser args(argc, argv);
  auto text = [&args](std::string& out) -> Status {
    Expected<std::string> v = args.value();
    if (!v.ok())
      return v.status();
    out = *v;
    return Status::success();
  };
  auto list = [&args, &text](std::vector<std::string>& out) -> Status {
    std::string raw;
    if (Status status = text(raw); !status.ok())
      return status;
    out = splitList(raw);
    return Status::success();
  };
  while (!args.done()) {
    Status status;
    std::string raw;
    if (args.matchFlag("out"))
      status = text(options.outFile);
    else if (args.matchFlag("kernels"))
      status = list(options.kernels);
    else if (args.matchFlag("flows"))
      status = list(options.flows);
    else if (args.matchFlag("backends"))
      status = list(options.backends);
    else if (args.matchFlag("workers")) {
      if (status = text(raw); status.ok())
        status = parseIntList(raw, "--workers", options.workers);
    } else if (args.matchFlag("fifo-depths")) {
      if (status = text(raw); status.ok())
        status = parseIntList(raw, "--fifo-depths", options.fifoDepths);
    } else if (args.matchFlag("scale")) {
      Expected<std::int64_t> v = args.intValue();
      if (!v.ok())
        status = v.status();
      else
        options.scale = static_cast<int>(*v);
    } else if (args.matchFlag("seed")) {
      Expected<std::uint64_t> v = args.uintValue();
      if (!v.ok())
        status = v.status();
      else
        options.seed = *v;
    } else if (args.matchFlag("max-cycles")) {
      Expected<std::uint64_t> v = args.uintValue();
      if (!v.ok())
        status = v.status();
      else
        options.maxCycles = *v;
    } else if (args.matchFlag("quiet")) {
      options.quiet = true;
    } else if (args.matchFlag("help", "-h")) {
      options.help = true;
    } else {
      status = args.unknown();
    }
    if (!status.ok())
      return status;
  }
  return Status::success();
}

driver::Flow flowFromName(const std::string& name, bool& ok) {
  ok = true;
  if (name == "p1")
    return driver::Flow::CgpaP1;
  if (name == "p2")
    return driver::Flow::CgpaP2;
  if (name == "legup")
    return driver::Flow::Legup;
  ok = false;
  return driver::Flow::CgpaP1;
}

/// Run one grid point and append its record; false when the point was
/// attempted but produced no record. `flowTag` is the CLI spelling ("p1")
/// used in the record's flow field and join key.
bool runPoint(const kernels::Kernel& kernel, driver::Flow flow,
              const std::string& flowTag, int workers, int fifoDepth,
              sim::SimBackend backend, const Options& options,
              std::size_t& written) {
  trace::RemarkCollector remarks;
  driver::CompileOptions compile;
  compile.partition.numWorkers = workers;
  compile.remarks = &remarks;
  Expected<driver::CompiledAccelerator> compiled =
      driver::compileKernelChecked(kernel, flow, compile);
  if (!compiled.ok()) {
    std::fprintf(stderr, "cgpa_sweep: %s %s w%d: compile failed: %s\n",
                 kernel.name().c_str(), flowTag.c_str(), workers,
                 compiled.status().toString().c_str());
    return false;
  }

  kernels::WorkloadConfig workloadConfig;
  workloadConfig.scale = options.scale;
  workloadConfig.seed = options.seed;
  kernels::Workload work = kernel.buildWorkload(workloadConfig);
  sim::SystemConfig system;
  system.fifoDepth = fifoDepth;
  system.backend = backend;
  if (options.maxCycles != 0)
    system.maxCycles = options.maxCycles;

  const auto start = std::chrono::steady_clock::now();
  Expected<sim::SimResult> simulated = sim::simulateSystemChecked(
      compiled->pipelineModule, *work.memory, work.args, system);
  const double wallMicros = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  if (!simulated.ok()) {
    std::fprintf(stderr, "cgpa_sweep: %s %s w%d f%d: sim failed: %s\n",
                 kernel.name().c_str(), flowTag.c_str(), workers,
                 fifoDepth, simulated.status().toString().c_str());
    return false;
  }

  kernels::Workload refWork = kernel.buildWorkload(workloadConfig);
  const std::uint64_t refReturn =
      kernel.runReference(*refWork.memory, refWork.args);
  const bool correct = simulated->returnValue == refReturn &&
                       work.memory->raw() == refWork.memory->raw();

  trace::RunRecordInputs record;
  record.kernel = kernel.name();
  record.flow = flowTag;
  record.workers = workers;
  record.fifoDepth = fifoDepth;
  record.scale = options.scale;
  record.seed = options.seed;
  record.correct = correct;
  record.freqMHz = system.freqMHz;
  record.simWallMicros = wallMicros;
  record.irText = ir::printModule(*compiled->module);
  record.result = &*simulated;
  record.pipeline = &compiled->pipelineModule;
  record.remarks = &remarks;
  if (!trace::appendRunRecordLine(options.outFile,
                                  trace::buildRunRecord(record))) {
    std::fprintf(stderr, "cgpa_sweep: cannot append to %s\n",
                 options.outFile.c_str());
    return false;
  }
  ++written;
  if (!options.quiet) {
    std::printf("%-14s %-3s w%d f%-3d %-8s %10llu cycles  %s\n",
                kernel.name().c_str(), flowTag.c_str(), workers,
                fifoDepth, sim::toString(simulated->backend),
                static_cast<unsigned long long>(simulated->cycles),
                correct ? "ok" : "MISMATCH");
  }
  return correct;
}

} // namespace

int main(int argc, char** argv) {
  Options options;
  if (Status status = parseArgs(argc, argv, options); !status.ok()) {
    std::fprintf(stderr, "cgpa_sweep: %s\n", status.toString().c_str());
    usage();
    return 1;
  }
  if (options.help) {
    usage();
    return 0;
  }
  if (options.outFile.empty()) {
    std::fprintf(stderr, "cgpa_sweep: --out is required\n");
    usage();
    return 1;
  }

  std::vector<const kernels::Kernel*> grid;
  if (options.kernels.empty()) {
    grid = kernels::allKernels();
  } else {
    for (const std::string& name : options.kernels) {
      const kernels::Kernel* kernel = kernels::kernelByName(name);
      if (kernel == nullptr) {
        std::fprintf(stderr, "cgpa_sweep: unknown kernel '%s'\n",
                     name.c_str());
        return 1;
      }
      grid.push_back(kernel);
    }
  }

  // Truncate up front so a re-run replaces, not extends, the archive.
  if (!std::ofstream(options.outFile, std::ios::trunc)) {
    std::fprintf(stderr, "cgpa_sweep: cannot write %s\n",
                 options.outFile.c_str());
    return 1;
  }

  std::size_t written = 0;
  std::size_t skipped = 0;
  std::size_t failed = 0;
  for (const kernels::Kernel* kernel : grid) {
    for (const std::string& flowName : options.flows) {
      bool flowOk = false;
      const driver::Flow flow = flowFromName(flowName, flowOk);
      if (!flowOk) {
        std::fprintf(stderr, "cgpa_sweep: unknown flow '%s'\n",
                     flowName.c_str());
        return 1;
      }
      if (flow == driver::Flow::CgpaP2 && !kernel->supportsP2()) {
        ++skipped;
        continue;
      }
      for (const std::string& backendName : options.backends) {
        sim::SimBackend backend = sim::SimBackend::Auto;
        if (!sim::parseSimBackend(backendName, backend)) {
          std::fprintf(stderr, "cgpa_sweep: unknown backend '%s'\n",
                       backendName.c_str());
          return 1;
        }
        for (int workers : options.workers)
          for (int fifoDepth : options.fifoDepths)
            if (!runPoint(*kernel, flow, flowName, workers, fifoDepth,
                          backend, options, written))
              ++failed;
      }
    }
  }
  std::printf("wrote %s: %zu record%s (%zu grid point%s skipped, %zu "
              "failed)\n",
              options.outFile.c_str(), written, written == 1 ? "" : "s",
              skipped, skipped == 1 ? "" : "s", failed);
  return failed != 0 ? 1 : 0;
}
