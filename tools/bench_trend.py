#!/usr/bin/env python3
"""Compare a fresh BENCH_simthroughput.json against the committed baseline.

Usage:
    bench_trend.py --baseline BENCH_simthroughput.json --current NEW.json \
        [--threshold 0.10]

For every kernel present in both documents, compares the simulator
throughput under both execution tiers (sim.cycles_per_sec and
sim_threaded.cycles_per_sec) and interpreter throughput
(interp.instr_per_sec). Exits non-zero when any metric regressed by more
than the threshold (default 10%). Improvements and new kernels are
reported but never fail the check, so the committed baseline only needs
refreshing when performance moves, not on every addition. A section
missing from the baseline (e.g. one recorded before the threaded tier
existed) is skipped; a section the current run lost counts as a
regression.

Run from the build tree via the optional `bench-trend` target:
    cmake --build build --target bench-trend

Either side may instead be a cgpa.run.v1 archive — a single record from
`cgpac --run-dir` or a JSONL grid from `cgpa_sweep` — so a sweep archive
doubles as the throughput baseline. Records carry wall-clock throughput
under `wall.cyclesPerSec`; the record's config.backend picks the section
(threaded -> sim_threaded, interp -> sim). When a grid holds several
points for one kernel the fastest is kept, matching the bench harness's
best-of-N convention. Records without timing (no `wall`) are ignored.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys


def load(path):
    """Load a bench document or a cgpa.run.v1 archive (JSON or JSONL)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as err:
        sys.exit("bench_trend: cannot load {}: {}".format(path, err))
    try:
        return json.loads(text)
    except ValueError:
        pass
    # JSONL archive from cgpa_sweep: one run record per line.
    records = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError as err:
            sys.exit("bench_trend: cannot load {}:{}: {}".format(
                path, lineno, err))
    if not records:
        sys.exit("bench_trend: {} holds neither JSON nor JSONL".format(path))
    return records


# config.backend spelling in a run record -> bench document section name.
RUN_BACKEND_SECTIONS = {"interp": "sim", "threaded": "sim_threaded"}


def run_records(doc):
    """Normalize to a list of cgpa.run.v1 records, or None if not one."""
    if isinstance(doc, list):
        records = doc
    elif isinstance(doc, dict) and doc.get("schema") == "cgpa.run.v1":
        records = [doc]
    else:
        return None
    for record in records:
        if not (isinstance(record, dict)
                and record.get("schema") == "cgpa.run.v1"):
            sys.exit("bench_trend: archive mixes cgpa.run.v1 with other "
                     "documents")
    return records


def kernels_from_runs(records):
    """Fold run records into the bench-document kernel shape, keeping the
    fastest throughput per kernel x section (best-of-N over the grid)."""
    kernels = {}
    for record in records:
        name = record.get("kernel")
        throughput = record.get("wall", {}).get("cyclesPerSec", 0)
        backend = record.get("config", {}).get("backend", "")
        section = RUN_BACKEND_SECTIONS.get(backend)
        if not name or not section or not throughput:
            continue
        entry = kernels.setdefault(name, {"kernel": name})
        best = entry.get(section, {}).get("cycles_per_sec", 0.0)
        if float(throughput) > best:
            entry[section] = {"cycles_per_sec": float(throughput)}
    return kernels


def kernel_map(doc):
    records = run_records(doc)
    if records is not None:
        return kernels_from_runs(records)
    kernels = {}
    for entry in doc.get("kernels", []):
        name = entry.get("kernel")
        if name:
            kernels[name] = entry
    return kernels


def metric(entry, section, key):
    value = entry.get(section, {}).get(key, 0)
    return float(value) if value else 0.0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_simthroughput.json")
    parser.add_argument("--current", required=True,
                        help="freshly measured BENCH_simthroughput.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    args = parser.parse_args()

    baseline = kernel_map(load(args.baseline))
    current = kernel_map(load(args.current))
    if not baseline:
        sys.exit("bench_trend: baseline has no kernels")
    if not current:
        sys.exit("bench_trend: current run has no kernels")

    checks = [("sim", "cycles_per_sec"),
              ("sim_threaded", "cycles_per_sec"),
              ("interp", "instr_per_sec")]
    regressions = []
    for name in sorted(baseline):
        if name not in current:
            print("bench_trend: {:14s} missing from current run".format(name))
            regressions.append((name, "missing", 0.0, 0.0))
            continue
        for section, key in checks:
            base = metric(baseline[name], section, key)
            cur = metric(current[name], section, key)
            if base <= 0.0:
                continue
            ratio = cur / base
            label = "{}.{}".format(section, key)
            status = "ok"
            if ratio < 1.0 - args.threshold:
                status = "REGRESSED"
                regressions.append((name, label, base, cur))
            print("bench_trend: {:14s} {:22s} {:>14.0f} -> {:>14.0f} "
                  "({:+6.1%}) {}".format(name, label, base, cur,
                                         ratio - 1.0, status))
    for name in sorted(set(current) - set(baseline)):
        print("bench_trend: {:14s} new kernel (no baseline)".format(name))

    if regressions:
        print("bench_trend: {} metric(s) regressed by more than {:.0%}"
              .format(len(regressions), args.threshold))
        return 1
    print("bench_trend: all metrics within {:.0%} of baseline"
          .format(args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
