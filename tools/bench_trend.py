#!/usr/bin/env python3
"""Compare a fresh BENCH_simthroughput.json against the committed baseline.

Usage:
    bench_trend.py --baseline BENCH_simthroughput.json --current NEW.json \
        [--threshold 0.10]

For every kernel present in both documents, compares the simulator
throughput under both execution tiers (sim.cycles_per_sec and
sim_threaded.cycles_per_sec) and interpreter throughput
(interp.instr_per_sec). Exits non-zero when any metric regressed by more
than the threshold (default 10%). Improvements and new kernels are
reported but never fail the check, so the committed baseline only needs
refreshing when performance moves, not on every addition. A section
missing from the baseline (e.g. one recorded before the threaded tier
existed) is skipped; a section the current run lost counts as a
regression.

Run from the build tree via the optional `bench-trend` target:
    cmake --build build --target bench-trend

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        sys.exit("bench_trend: cannot load {}: {}".format(path, err))


def kernel_map(doc):
    kernels = {}
    for entry in doc.get("kernels", []):
        name = entry.get("kernel")
        if name:
            kernels[name] = entry
    return kernels


def metric(entry, section, key):
    value = entry.get(section, {}).get(key, 0)
    return float(value) if value else 0.0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_simthroughput.json")
    parser.add_argument("--current", required=True,
                        help="freshly measured BENCH_simthroughput.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    args = parser.parse_args()

    baseline = kernel_map(load(args.baseline))
    current = kernel_map(load(args.current))
    if not baseline:
        sys.exit("bench_trend: baseline has no kernels")
    if not current:
        sys.exit("bench_trend: current run has no kernels")

    checks = [("sim", "cycles_per_sec"),
              ("sim_threaded", "cycles_per_sec"),
              ("interp", "instr_per_sec")]
    regressions = []
    for name in sorted(baseline):
        if name not in current:
            print("bench_trend: {:14s} missing from current run".format(name))
            regressions.append((name, "missing", 0.0, 0.0))
            continue
        for section, key in checks:
            base = metric(baseline[name], section, key)
            cur = metric(current[name], section, key)
            if base <= 0.0:
                continue
            ratio = cur / base
            label = "{}.{}".format(section, key)
            status = "ok"
            if ratio < 1.0 - args.threshold:
                status = "REGRESSED"
                regressions.append((name, label, base, cur))
            print("bench_trend: {:14s} {:22s} {:>14.0f} -> {:>14.0f} "
                  "({:+6.1%}) {}".format(name, label, base, cur,
                                         ratio - 1.0, status))
    for name in sorted(set(current) - set(baseline)):
        print("bench_trend: {:14s} new kernel (no baseline)".format(name))

    if regressions:
        print("bench_trend: {} metric(s) regressed by more than {:.0%}"
              .format(len(regressions), args.threshold))
        return 1
    print("bench_trend: all metrics within {:.0%} of baseline"
          .format(args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
