#!/usr/bin/env python3
"""Compare a fresh BENCH_simthroughput.json against the committed baseline.

Usage:
    bench_trend.py --baseline BENCH_simthroughput.json --current NEW.json \
        [--threshold 0.10]

For every kernel present in both documents, compares the simulator
throughput under both execution tiers (sim.cycles_per_sec and
sim_threaded.cycles_per_sec) and interpreter throughput
(interp.instr_per_sec). Exits non-zero when any metric regressed by more
than the threshold (default 10%). Improvements and new kernels are
reported but never fail the check, so the committed baseline only needs
refreshing when performance moves, not on every addition. A section
missing from the baseline (e.g. one recorded before the threaded tier
existed) is skipped; a section the current run lost counts as a
regression.

Run from the build tree via the optional `bench-trend` target:
    cmake --build build --target bench-trend

When both sides are cgpa.serviceload.v1 documents (from bench/service_load)
the comparison instead runs point-wise over jobs_per_sec at matching
(kernel, workers) pairs. Points only one side has are reported but never
fail the check — the worker sweep includes the machine's hardware
concurrency, so baselines recorded on different machines legitimately
carry different points — but at least one point must match, and a matched
point regressing beyond the threshold fails as usual. When both sides
carry per-phase p99 latency (the `phases` object service_load records
from the server's live telemetry registry), a failing point also names
the phase whose p99 degraded most — localizing the regression to parse,
compile, simulate, serialize, etc. Phase-only degradations (p99 up while
jobs/sec held) are warned about but never fail: phase tails at short
measurement windows are too noisy to gate on.

Either side may instead be a cgpa.run.v1 archive — a single record from
`cgpac --run-dir` or a JSONL grid from `cgpa_sweep` — so a sweep archive
doubles as the throughput baseline. Records carry wall-clock throughput
under `wall.cyclesPerSec`; the record's config.backend picks the section
(threaded -> sim_threaded, interp -> sim). When a grid holds several
points for one kernel the fastest is kept, matching the bench harness's
best-of-N convention. Records without timing (no `wall`) are ignored.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys


def load(path):
    """Load a bench document or a cgpa.run.v1 archive (JSON or JSONL)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as err:
        sys.exit("bench_trend: cannot load {}: {}".format(path, err))
    try:
        return json.loads(text)
    except ValueError:
        pass
    # JSONL archive from cgpa_sweep: one run record per line.
    records = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError as err:
            sys.exit("bench_trend: cannot load {}:{}: {}".format(
                path, lineno, err))
    if not records:
        sys.exit("bench_trend: {} holds neither JSON nor JSONL".format(path))
    return records


# config.backend spelling in a run record -> bench document section name.
RUN_BACKEND_SECTIONS = {"interp": "sim", "threaded": "sim_threaded"}


def run_records(doc):
    """Normalize to a list of cgpa.run.v1 records, or None if not one."""
    if isinstance(doc, list):
        records = doc
    elif isinstance(doc, dict) and doc.get("schema") == "cgpa.run.v1":
        records = [doc]
    else:
        return None
    for record in records:
        if not (isinstance(record, dict)
                and record.get("schema") == "cgpa.run.v1"):
            sys.exit("bench_trend: archive mixes cgpa.run.v1 with other "
                     "documents")
    return records


def kernels_from_runs(records):
    """Fold run records into the bench-document kernel shape, keeping the
    fastest throughput per kernel x section (best-of-N over the grid)."""
    kernels = {}
    for record in records:
        name = record.get("kernel")
        throughput = record.get("wall", {}).get("cyclesPerSec", 0)
        backend = record.get("config", {}).get("backend", "")
        section = RUN_BACKEND_SECTIONS.get(backend)
        if not name or not section or not throughput:
            continue
        entry = kernels.setdefault(name, {"kernel": name})
        best = entry.get(section, {}).get("cycles_per_sec", 0.0)
        if float(throughput) > best:
            entry[section] = {"cycles_per_sec": float(throughput)}
    return kernels


def kernel_map(doc):
    records = run_records(doc)
    if records is not None:
        return kernels_from_runs(records)
    kernels = {}
    for entry in doc.get("kernels", []):
        name = entry.get("kernel")
        if name:
            kernels[name] = entry
    return kernels


def metric(entry, section, key):
    value = entry.get(section, {}).get(key, 0)
    return float(value) if value else 0.0


def serviceload_points(doc):
    """(kernel, workers) -> point summary for a cgpa.serviceload.v1 doc,
    or None if the document is something else. Each summary holds the
    jobs_per_sec rate plus phase-name -> p99_micros when recorded."""
    if not (isinstance(doc, dict)
            and doc.get("schema") == "cgpa.serviceload.v1"):
        return None
    points = {}
    for point in doc.get("points", []):
        kernel = point.get("kernel")
        workers = point.get("workers")
        rate = point.get("jobs_per_sec", 0)
        phases = {}
        for name, summary in point.get("phases", {}).items():
            p99 = summary.get("p99_micros", 0)
            if p99:
                phases[name] = float(p99)
        if kernel and workers:
            points[(kernel, int(workers))] = {"jobs_per_sec": float(rate),
                                              "phases": phases}
    return points


def degraded_phases(base_phases, cur_phases, threshold):
    """Phases whose p99 grew beyond the threshold, worst-first, as
    (name, base_p99, cur_p99) triples."""
    worst = []
    for name, base in base_phases.items():
        cur = cur_phases.get(name, 0.0)
        if base > 0.0 and cur > base * (1.0 + threshold):
            worst.append((name, base, cur))
    worst.sort(key=lambda entry: entry[2] / entry[1], reverse=True)
    return worst


def compare_serviceload(baseline, current, threshold):
    regressions = []
    matched = 0
    for key in sorted(baseline):
        label = "{}@w{}".format(key[0], key[1])
        if key not in current:
            print("bench_trend: {:20s} not in current run (machine-"
                  "dependent worker sweep); skipped".format(label))
            continue
        matched += 1
        base = baseline[key]["jobs_per_sec"]
        cur = current[key]["jobs_per_sec"]
        if base <= 0.0:
            continue
        ratio = cur / base
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSED"
            regressions.append((label, base, cur))
        print("bench_trend: {:20s} jobs_per_sec {:>12.1f} -> {:>12.1f} "
              "({:+6.1%}) {}".format(label, base, cur, ratio - 1.0, status))
        # Per-phase p99s localize the movement. Only the jobs/sec gate
        # fails the check; phase-only degradations are warnings (short
        # windows make tail latency noisy), but on a real regression the
        # most-degraded phase is the place to start looking.
        worst = degraded_phases(baseline[key].get("phases", {}),
                                current[key].get("phases", {}), threshold)
        if status == "REGRESSED" and worst:
            name, base_p99, cur_p99 = worst[0]
            print("bench_trend: {:20s}   most-degraded phase: {} p99 "
                  "{:.1f}us -> {:.1f}us ({:+.1%})".format(
                      label, name, base_p99, cur_p99,
                      cur_p99 / base_p99 - 1.0))
        elif worst:
            for name, base_p99, cur_p99 in worst:
                print("bench_trend: {:20s}   warning: phase {} p99 "
                      "{:.1f}us -> {:.1f}us ({:+.1%}) while jobs/sec held"
                      .format(label, name, base_p99, cur_p99,
                              cur_p99 / base_p99 - 1.0))
    for key in sorted(set(current) - set(baseline)):
        print("bench_trend: {:20s} new point (no baseline)".format(
            "{}@w{}".format(key[0], key[1])))
    if matched == 0:
        print("bench_trend: no serviceload point matches the baseline")
        return 1
    if regressions:
        print("bench_trend: {} serviceload point(s) regressed by more than "
              "{:.0%}".format(len(regressions), threshold))
        return 1
    print("bench_trend: all matched serviceload points within {:.0%} of "
          "baseline".format(threshold))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_simthroughput.json")
    parser.add_argument("--current", required=True,
                        help="freshly measured BENCH_simthroughput.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    args = parser.parse_args()

    baseline_doc = load(args.baseline)
    current_doc = load(args.current)
    baseline_load = serviceload_points(baseline_doc)
    current_load = serviceload_points(current_doc)
    if (baseline_load is None) != (current_load is None):
        sys.exit("bench_trend: cannot compare a serviceload document "
                 "against a throughput document")
    if baseline_load is not None:
        return compare_serviceload(baseline_load, current_load,
                                   args.threshold)

    baseline = kernel_map(baseline_doc)
    current = kernel_map(current_doc)
    if not baseline:
        sys.exit("bench_trend: baseline has no kernels")
    if not current:
        sys.exit("bench_trend: current run has no kernels")

    checks = [("sim", "cycles_per_sec"),
              ("sim_threaded", "cycles_per_sec"),
              ("interp", "instr_per_sec")]
    regressions = []
    for name in sorted(baseline):
        if name not in current:
            print("bench_trend: {:14s} missing from current run".format(name))
            regressions.append((name, "missing", 0.0, 0.0))
            continue
        for section, key in checks:
            base = metric(baseline[name], section, key)
            cur = metric(current[name], section, key)
            if base <= 0.0:
                continue
            ratio = cur / base
            label = "{}.{}".format(section, key)
            status = "ok"
            if ratio < 1.0 - args.threshold:
                status = "REGRESSED"
                regressions.append((name, label, base, cur))
            print("bench_trend: {:14s} {:22s} {:>14.0f} -> {:>14.0f} "
                  "({:+6.1%}) {}".format(name, label, base, cur,
                                         ratio - 1.0, status))
    for name in sorted(set(current) - set(baseline)):
        print("bench_trend: {:14s} new kernel (no baseline)".format(name))

    if regressions:
        print("bench_trend: {} metric(s) regressed by more than {:.0%}"
              .format(len(regressions), args.threshold))
        return 1
    print("bench_trend: all metrics within {:.0%} of baseline"
          .format(args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
