// cgpac: command-line front end for the CGPA framework.
//
//   cgpac --kernel em3d                      # compile + simulate + report
//   cgpac --kernel em3d --flow p2            # replicated data-level variant
//   cgpac --kernel ks --workers 8            # change the worker count
//   cgpac --kernel em3d --dump-ir            # print the kernel IR (textual)
//   cgpac --kernel em3d --emit-verilog x.v   # write RTL + testbench
//   cgpac --ir my_loop.ir --loop header      # compile IR from a file
//
// The textual IR format round-trips through --dump-ir, so a dumped kernel
// can be edited and fed back with --ir.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "cgpa/driver.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "opt/passes.hpp"
#include "support/argparse.hpp"
#include "trace/bottleneck.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/failure_json.hpp"
#include "trace/metrics.hpp"
#include "trace/remarks.hpp"
#include "trace/remarks_json.hpp"
#include "trace/run_record.hpp"
#include "trace/sampler.hpp"
#include "verilog/emitter.hpp"
#include "verilog/lint.hpp"
#include "verilog/testbench.hpp"

namespace {

using namespace cgpa;

// Documented exit codes (also in usage() and docs/robustness.md). CI and
// scripts key on these, so keep the mapping stable.
enum ExitCode : int {
  kExitOk = 0,
  kExitGeneric = 1,   ///< Result mismatch, I/O failure, internal error.
  kExitUsage = 2,     ///< Bad flags / bad request (InvalidArgument).
  kExitParse = 3,     ///< ParseError.
  kExitVerify = 4,    ///< VerifyError.
  kExitCompile = 5,   ///< PartitionError / ScheduleError / TransformError.
  kExitDeadlock = 6,  ///< SimDeadlock.
  kExitCycleCap = 7,  ///< CycleCapExceeded.
};

struct Options {
  std::string kernel;
  std::string irFile;
  std::string loopHeader;
  std::string flow = "p1";
  std::string verilogOut;
  std::string traceOut;     ///< Chrome trace-event JSON (Perfetto).
  std::string traceCsvOut;  ///< Interval metrics CSV time-series.
  std::string statsJsonOut; ///< cgpa.simstats.v1 stats document.
  std::string failureJsonOut; ///< cgpa.failure.v1 on failure.
  std::string remarksOut;   ///< cgpa.remarks.v1 compiler-decision document.
  std::string runDir;       ///< Directory for the cgpa.run.v1 run record.
  int traceSample = 100;    ///< Sampler interval in cycles.
  /// Cycle-sim execution tier (sim/system.hpp); Auto resolves at
  /// SystemSimulator construction (currently to Threaded).
  sim::SimBackend backend = sim::SimBackend::Auto;
  int workers = 4;
  int fifoDepth = 16;
  int scale = 1;
  std::uint64_t seed = 42;
  std::uint64_t maxCycles = 0; ///< 0 = sim::kDefaultMaxCycles.
  bool dumpIr = false;
  bool explain = false; ///< Post-run bottleneck attribution report.
  bool help = false;
};

int exitCodeFor(const Status& status) {
  switch (status.code()) {
  case ErrorCode::Ok:
    return kExitOk;
  case ErrorCode::InvalidArgument:
    return kExitUsage;
  case ErrorCode::ParseError:
    return kExitParse;
  case ErrorCode::VerifyError:
    return kExitVerify;
  case ErrorCode::PartitionError:
  case ErrorCode::ScheduleError:
  case ErrorCode::TransformError:
    return kExitCompile;
  case ErrorCode::SimDeadlock:
    return kExitDeadlock;
  case ErrorCode::CycleCapExceeded:
    return kExitCycleCap;
  case ErrorCode::IoError:
  case ErrorCode::Internal:
    return kExitGeneric;
  }
  return kExitGeneric;
}

/// Print a failure Status (with any forensic detail) to stderr, write the
/// cgpa.failure.v1 JSON when --failure-json was given, and return the
/// documented exit code.
int reportFailure(const Status& status, const Options& options) {
  std::fprintf(stderr, "cgpac: %s\n", status.toString().c_str());
  if (status.detail() != nullptr)
    std::fprintf(stderr, "%s\n", status.detail()->describe().c_str());
  if (!options.failureJsonOut.empty()) {
    std::ofstream out(options.failureJsonOut);
    if (out) {
      trace::failureJson(status).dump(out, 2);
      out << "\n";
      std::fprintf(stderr, "wrote %s\n", options.failureJsonOut.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n",
                   options.failureJsonOut.c_str());
    }
  }
  return exitCodeFor(status);
}

void usage() {
  std::printf(
      "cgpac — CGPA (DAC'14) coarse-grained pipelined accelerator compiler\n"
      "\n"
      "  --kernel NAME      built-in kernel: kmeans | hash-indexing | ks |\n"
      "                     em3d | 1d-gaussblur\n"
      "  --ir FILE          compile textual IR from FILE (needs --loop)\n"
      "  --loop BLOCK       target loop header block name (with --ir)\n"
      "  --flow p1|p2|legup accelerator flow (default p1)\n"
      "  --workers N        parallel-stage workers (default 4, power of 2)\n"
      "  --fifo-depth N     FIFO entries per lane (default 16)\n"
      "  --scale N          workload scale factor (default 1)\n"
      "  --seed N           workload seed (default 42)\n"
      "  --dump-ir          print the (pre-transform) kernel IR and exit\n"
      "  --emit-verilog F   write RTL to F and a testbench to F.tb\n"
      "  --trace FILE       write a Chrome trace-event JSON of the run\n"
      "                     (load in Perfetto / chrome://tracing)\n"
      "  --trace-csv FILE   write FIFO-occupancy + per-stage-utilization\n"
      "                     CSV time-series sampled every --trace-sample\n"
      "  --trace-sample N   sampling interval in cycles (default 100)\n"
      "  --stats-json FILE  write the full run stats as JSON\n"
      "                     (schema cgpa.simstats.v1)\n"
      "  --max-cycles N     simulation cycle cap (default 4e9; the same\n"
      "                     knob the fuzz oracle derives its cap from)\n"
      "  --sim-backend B    cycle-sim execution tier: interp (switch-based\n"
      "                     MicroOp interpreter), threaded (computed-goto\n"
      "                     threaded code; bit-identical results), or auto\n"
      "                     (default: threaded)\n"
      "  --failure-json F   on failure, write a cgpa.failure.v1 JSON\n"
      "                     document (deadlock forensics included) to F\n"
      "  --remarks FILE     write compiler decision provenance as JSON\n"
      "                     (schema cgpa.remarks.v1: alias pruning, SCC\n"
      "                     classification, partition, channels, SDC)\n"
      "  --run-dir DIR      archive the run as a cgpa.run.v1 record in DIR\n"
      "                     (stats + remarks digest + health + IR hash;\n"
      "                     compare two records with cgpa_diff)\n"
      "  --explain          after simulating, print the pipeline health\n"
      "                     report: limiting stage, per-channel\n"
      "                     backpressure, ranked what-if suggestions\n"
      "  --help             this text\n"
      "\n"
      "Flags also accept --flag=value syntax.\n"
      "\n"
      "Exit codes: 0 success; 1 result mismatch / I/O / internal;\n"
      "2 usage or invalid request; 3 parse error; 4 verification error;\n"
      "5 partition/schedule/transform error; 6 simulation deadlock;\n"
      "7 cycle cap exceeded.\n");
}

Status parseArgs(int argc, char** argv, Options& options) {
  support::ArgParser args(argc, argv);
  auto text = [&args](std::string& out) -> Status {
    Expected<std::string> v = args.value();
    if (!v.ok())
      return v.status();
    out = *v;
    return Status::success();
  };
  auto integer = [&args](int& out) -> Status {
    Expected<std::int64_t> v = args.intValue();
    if (!v.ok())
      return v.status();
    out = static_cast<int>(*v);
    return Status::success();
  };
  auto u64 = [&args](std::uint64_t& out) -> Status {
    Expected<std::uint64_t> v = args.uintValue();
    if (!v.ok())
      return v.status();
    out = *v;
    return Status::success();
  };
  while (!args.done()) {
    Status status;
    if (args.matchFlag("kernel"))
      status = text(options.kernel);
    else if (args.matchFlag("ir"))
      status = text(options.irFile);
    else if (args.matchFlag("loop"))
      status = text(options.loopHeader);
    else if (args.matchFlag("flow"))
      status = text(options.flow);
    else if (args.matchFlag("workers"))
      status = integer(options.workers);
    else if (args.matchFlag("fifo-depth"))
      status = integer(options.fifoDepth);
    else if (args.matchFlag("scale"))
      status = integer(options.scale);
    else if (args.matchFlag("seed"))
      status = u64(options.seed);
    else if (args.matchFlag("trace"))
      status = text(options.traceOut);
    else if (args.matchFlag("trace-csv"))
      status = text(options.traceCsvOut);
    else if (args.matchFlag("trace-sample"))
      status = integer(options.traceSample);
    else if (args.matchFlag("stats-json"))
      status = text(options.statsJsonOut);
    else if (args.matchFlag("max-cycles"))
      status = u64(options.maxCycles);
    else if (args.matchFlag("sim-backend")) {
      std::string name;
      status = text(name);
      if (status.ok() && !sim::parseSimBackend(name, options.backend))
        status = Status::error(ErrorCode::InvalidArgument,
                               "--sim-backend needs interp, threaded, or "
                               "auto; got '" + name + "'");
    }
    else if (args.matchFlag("failure-json"))
      status = text(options.failureJsonOut);
    else if (args.matchFlag("remarks"))
      status = text(options.remarksOut);
    else if (args.matchFlag("run-dir"))
      status = text(options.runDir);
    else if (args.matchFlag("emit-verilog"))
      status = text(options.verilogOut);
    else if (args.matchFlag("explain"))
      options.explain = true;
    else if (args.matchFlag("dump-ir"))
      options.dumpIr = true;
    else if (args.matchFlag("help", "-h"))
      options.help = true;
    else
      status = args.unknown();
    if (!status.ok())
      return status;
  }
  return Status::success();
}

driver::Flow flowFromName(const std::string& name) {
  if (name == "p1")
    return driver::Flow::CgpaP1;
  if (name == "p2")
    return driver::Flow::CgpaP2;
  if (name == "legup")
    return driver::Flow::Legup;
  std::fprintf(stderr, "unknown flow '%s' (use p1|p2|legup)\n", name.c_str());
  std::exit(kExitUsage);
}

int emitVerilog(const pipeline::PipelineModule& pm, const Options& options) {
  verilog::VerilogOptions vopts;
  vopts.fifoDepth = options.fifoDepth;
  const std::string rtl =
      verilog::emitPipelineVerilog(pm, hls::ScheduleOptions{}, vopts);
  const std::string tb =
      verilog::emitTestbench(pm, verilog::TestbenchOptions{});
  const std::string lint = verilog::lintReport(rtl + "\n" + tb);
  if (!lint.empty()) {
    std::fprintf(stderr, "internal error: emitted RTL failed lint:\n%s",
                 lint.c_str());
    return 1;
  }
  std::ofstream(options.verilogOut) << rtl;
  std::ofstream(options.verilogOut + ".tb") << tb;
  std::printf("wrote %s and %s.tb (lint clean)\n", options.verilogOut.c_str(),
              options.verilogOut.c_str());
  return 0;
}

int runKernelFlow(const Options& options) {
  const kernels::Kernel* kernel = kernels::kernelByName(options.kernel);
  if (kernel == nullptr) {
    std::fprintf(stderr, "unknown kernel '%s'\n", options.kernel.c_str());
    return kExitUsage;
  }
  if (options.dumpIr) {
    auto module = kernel->buildModule();
    std::printf("%s", ir::printModule(*module).c_str());
    return 0;
  }

  // Remarks are collected whenever something will consume them: an
  // explicit --remarks file, the --explain report (which joins them with
  // the run's counters for source-level attribution), or a --run-dir
  // archive record (which embeds their digest for cgpa_diff).
  trace::RemarkCollector remarksCollector;
  const bool wantRemarks = !options.remarksOut.empty() || options.explain ||
                           !options.runDir.empty();

  driver::CompileOptions compile;
  compile.partition.numWorkers = options.workers;
  if (wantRemarks)
    compile.remarks = &remarksCollector;
  const driver::Flow flow = flowFromName(options.flow);
  Expected<driver::CompiledAccelerator> compiled =
      driver::compileKernelChecked(*kernel, flow, compile);
  if (!compiled.ok())
    return reportFailure(compiled.status(), options);
  const driver::CompiledAccelerator& accel = *compiled;

  // Written before simulating so the compile provenance survives a
  // deadlocked or cycle-capped run.
  if (!options.remarksOut.empty()) {
    if (!trace::writeRemarksFile(options.remarksOut, remarksCollector)) {
      std::fprintf(stderr, "cannot write %s\n", options.remarksOut.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu remarks)\n", options.remarksOut.c_str(),
                remarksCollector.size());
  }
  std::printf("kernel %s, flow %s\n", kernel->name().c_str(),
              driver::flowName(flow));
  std::printf("%s", accel.plan.describe().c_str());
  std::printf("area: %d ALUTs, %d registers, %d FSM states, %d FIFO BRAM "
              "bits\n",
              accel.area.aluts, accel.area.registers, accel.area.fsmStates,
              accel.area.fifoBramBits);

  kernels::WorkloadConfig workloadConfig;
  workloadConfig.scale = options.scale;
  workloadConfig.seed = options.seed;
  kernels::Workload work = kernel->buildWorkload(workloadConfig);
  sim::SystemConfig system;
  system.fifoDepth = options.fifoDepth;
  system.backend = options.backend;
  if (options.maxCycles != 0)
    system.maxCycles = options.maxCycles;

  // Optional observability backends; a null tracer keeps the simulation
  // hook-free (identical cycles either way — see trace/tracer.hpp).
  std::unique_ptr<trace::ChromeTraceWriter> chromeTrace;
  std::unique_ptr<trace::IntervalSampler> sampler;
  sim::TeeTracer tee;
  if (!options.traceOut.empty()) {
    chromeTrace =
        std::make_unique<trace::ChromeTraceWriter>(&accel.pipelineModule);
    tee.add(chromeTrace.get());
  }
  if (!options.traceCsvOut.empty()) {
    sampler = std::make_unique<trace::IntervalSampler>(
        static_cast<std::uint64_t>(std::max(options.traceSample, 1)),
        &accel.pipelineModule);
    tee.add(sampler.get());
  }
  sim::Tracer* tracer = tee.empty() ? nullptr : &tee;

  const auto simStart = std::chrono::steady_clock::now();
  Expected<sim::SimResult> simulated = sim::simulateSystemChecked(
      accel.pipelineModule, *work.memory, work.args, system, tracer);
  const double simWallMicros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - simStart)
          .count();
  if (!simulated.ok())
    return reportFailure(simulated.status(), options);
  const sim::SimResult& result = *simulated;

  kernels::Workload refWork = kernel->buildWorkload(workloadConfig);
  const std::uint64_t refReturn =
      kernel->runReference(*refWork.memory, refWork.args);
  const bool correct = result.returnValue == refReturn &&
                       work.memory->raw() == refWork.memory->raw();

  std::printf("cycles: %llu (%.1f us at 200 MHz, %s tier), result %s\n",
              static_cast<unsigned long long>(result.cycles),
              result.timeMicros(200.0), sim::toString(result.backend),
              correct ? "correct" : "MISMATCH");
  std::printf("cache: %llu accesses, %.1f%% hits; fifo pushes/pops: "
              "%llu/%llu; stalls mem/fifo/dep: %llu/%llu/%llu\n",
              static_cast<unsigned long long>(result.cache.accesses),
              result.cache.hitRate() * 100.0,
              static_cast<unsigned long long>(result.fifoPushes),
              static_cast<unsigned long long>(result.fifoPops),
              static_cast<unsigned long long>(result.stallMem),
              static_cast<unsigned long long>(result.stallFifo),
              static_cast<unsigned long long>(result.stallDep));
  const std::uint64_t engineCycles =
      result.cyclesActive + result.cyclesStalled;
  std::printf("engine cycles: %llu active, %llu stalled (%.1f%% utilization "
              "across %d engines)\n",
              static_cast<unsigned long long>(result.cyclesActive),
              static_cast<unsigned long long>(result.cyclesStalled),
              engineCycles == 0 ? 0.0
                                : 100.0 *
                                      static_cast<double>(result.cyclesActive) /
                                      static_cast<double>(engineCycles),
              result.enginesSpawned + 1);
  for (std::size_t c = 0; c < result.channelStats.size(); ++c) {
    const pipeline::ChannelInfo& info = accel.pipelineModule.channels[c];
    std::printf("  channel %zu (%s, stage %d->%d%s): %llu pushes, %llu "
                "pops, high water %d/%d flits\n",
                c, info.valueName.c_str(), info.producerStage,
                info.consumerStage, info.broadcast ? ", broadcast" : "",
                static_cast<unsigned long long>(result.channelStats[c].pushes),
                static_cast<unsigned long long>(result.channelStats[c].pops),
                result.channelStats[c].maxOccupancyFlits, options.fifoDepth);
  }

  if (chromeTrace != nullptr) {
    if (!chromeTrace->writeFile(options.traceOut)) {
      std::fprintf(stderr, "cannot write %s\n", options.traceOut.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu spans; open in Perfetto)\n",
                options.traceOut.c_str(), chromeTrace->numSpans());
  }
  if (sampler != nullptr) {
    if (!sampler->writeFile(options.traceCsvOut)) {
      std::fprintf(stderr, "cannot write %s\n", options.traceCsvOut.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu rows, every %llu cycles)\n",
                options.traceCsvOut.c_str(), sampler->numRows(),
                static_cast<unsigned long long>(sampler->interval()));
  }
  if (!options.statsJsonOut.empty()) {
    // Shared with the cgpad service: both must emit byte-identical stats
    // documents for the same run (pinned by serve_determinism_test).
    trace::StatsDocInputs statsInputs;
    statsInputs.result = &result;
    statsInputs.pipeline = &accel.pipelineModule;
    statsInputs.freqMHz = system.freqMHz;
    statsInputs.kernel = kernel->name();
    statsInputs.flow = driver::flowName(flow);
    statsInputs.correct = correct;
    statsInputs.workers = options.workers;
    statsInputs.fifoDepth = options.fifoDepth;
    statsInputs.scale = options.scale;
    statsInputs.seed = options.seed;
    std::ofstream statsOut(options.statsJsonOut);
    if (statsOut)
      statsOut << trace::buildStatsDocument(statsInputs).dump(2) << "\n";
    if (!statsOut) {
      std::fprintf(stderr, "cannot write %s\n", options.statsJsonOut.c_str());
      return 1;
    }
    std::printf("wrote %s\n", options.statsJsonOut.c_str());
  }

  if (!options.runDir.empty()) {
    trace::RunRecordInputs record;
    record.kernel = kernel->name();
    record.flow = options.flow; // CLI spelling ("p1"), not flowName().
    record.workers = options.workers;
    record.fifoDepth = options.fifoDepth;
    record.scale = options.scale;
    record.seed = options.seed;
    record.correct = correct;
    record.freqMHz = system.freqMHz;
    record.simWallMicros = simWallMicros;
    record.irText = ir::printModule(*accel.module);
    record.result = &result;
    record.pipeline = &accel.pipelineModule;
    record.remarks = &remarksCollector;
    const trace::JsonValue doc = trace::buildRunRecord(record);
    std::error_code ec;
    std::filesystem::create_directories(options.runDir, ec);
    const std::string path =
        (std::filesystem::path(options.runDir) /
         trace::runRecordFileName(doc))
            .string();
    if (ec || !trace::writeRunRecordFile(path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }

  if (options.explain) {
    const trace::PipelineHealthReport report = trace::buildHealthReport(
        result, accel.pipelineModule, &remarksCollector);
    std::printf("\n%s", trace::renderHealthReport(report).c_str());
  }

  if (!options.verilogOut.empty())
    return emitVerilog(accel.pipelineModule, options);
  return correct ? 0 : 1;
}

int runIrFlow(const Options& options) {
  std::ifstream in(options.irFile);
  if (!in) {
    return reportFailure(Status::error(ErrorCode::IoError,
                                       "cannot open " + options.irFile),
                         options);
  }
  std::ostringstream text;
  text << in.rdbuf();
  ir::ParseResult parsed = ir::parseModule(text.str());
  if (!parsed.ok())
    return reportFailure(ir::parseStatus(parsed), options);
  if (Status status = ir::verifyModuleStatus(*parsed.module); !status.ok())
    return reportFailure(status, options);
  ir::Function* fn = parsed.module->findFunction("kernel");
  if (fn == nullptr) {
    return reportFailure(Status::error(ErrorCode::InvalidArgument,
                                       "module has no @kernel function"),
                         options);
  }
  if (options.loopHeader.empty()) {
    return reportFailure(Status::error(ErrorCode::InvalidArgument,
                                       "--ir requires --loop <header-block>"),
                         options);
  }

  opt::runScalarOptimizations(*parsed.module);
  analysis::DominatorTree dom(*fn);
  analysis::DominatorTree postDom(*fn, true);
  analysis::LoopInfo loops(*fn, dom);
  analysis::AliasAnalysis alias(*fn, *parsed.module, loops);
  analysis::ControlDependence controlDeps(*fn, postDom);
  ir::BasicBlock* header = fn->findBlock(options.loopHeader);
  if (header == nullptr || loops.loopWithHeader(header) == nullptr) {
    return reportFailure(Status::error(ErrorCode::InvalidArgument,
                                       "'" + options.loopHeader +
                                           "' is not a loop header"),
                         options);
  }
  analysis::Loop* loop = loops.loopWithHeader(header);
  trace::RemarkCollector remarksCollector;
  trace::RemarkCollector* remarks =
      options.remarksOut.empty() ? nullptr : &remarksCollector;
  analysis::Pdg pdg(*fn, *loop, alias, controlDeps, remarks);
  analysis::SccGraph sccs(
      pdg, [](const ir::Instruction*) { return 1.0; }, remarks);

  pipeline::PartitionOptions popts;
  popts.numWorkers = options.workers;
  popts.remarks = remarks;
  if (options.flow == "p2")
    popts.policy = pipeline::ReplicablePolicy::ForceParallel;
  if (options.flow != "legup") {
    if (Status status = pipeline::checkPartitionOptions(popts); !status.ok())
      return reportFailure(status, options);
  }
  pipeline::PipelinePlan plan =
      options.flow == "legup" ? pipeline::sequentialPlan(sccs, *loop, remarks)
                              : pipeline::partitionLoop(sccs, *loop, popts);
  std::printf("%s", plan.describe().c_str());

  if (Status status = pipeline::checkTransformPreconditions(plan);
      !status.ok())
    return reportFailure(status, options);
  const pipeline::PipelineModule pm =
      pipeline::transformLoop(*fn, plan, 0, remarks);
  if (remarks != nullptr) {
    if (!trace::writeRemarksFile(options.remarksOut, remarksCollector)) {
      std::fprintf(stderr, "cannot write %s\n", options.remarksOut.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu remarks)\n", options.remarksOut.c_str(),
                remarksCollector.size());
  }
  if (Status status = ir::verifyModuleStatus(*parsed.module); !status.ok()) {
    return reportFailure(Status::error(ErrorCode::VerifyError,
                                       "transform broke the module: " +
                                           status.message()),
                         options);
  }
  std::printf("transformed: %zu tasks, %zu channels, %zu live-outs\n",
              pm.tasks.size(), pm.channels.size(), pm.liveouts.size());
  if (options.dumpIr)
    std::printf("%s", ir::printModule(*parsed.module).c_str());
  if (!options.verilogOut.empty())
    return emitVerilog(pm, options);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  Options options;
  if (Status status = parseArgs(argc, argv, options); !status.ok()) {
    std::fprintf(stderr, "cgpac: %s\n", status.toString().c_str());
    usage();
    return exitCodeFor(status);
  }
  if (options.help || (options.kernel.empty() && options.irFile.empty())) {
    usage();
    return options.help ? kExitOk : kExitUsage;
  }
  if (!options.kernel.empty())
    return runKernelFlow(options);
  return runIrFlow(options);
}
