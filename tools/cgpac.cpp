// cgpac: command-line front end for the CGPA framework.
//
//   cgpac --kernel em3d                      # compile + simulate + report
//   cgpac --kernel em3d --flow p2            # replicated data-level variant
//   cgpac --kernel ks --workers 8            # change the worker count
//   cgpac --kernel em3d --dump-ir            # print the kernel IR (textual)
//   cgpac --kernel em3d --emit-verilog x.v   # write RTL + testbench
//   cgpac --ir my_loop.ir --loop header      # compile IR from a file
//
// The textual IR format round-trips through --dump-ir, so a dumped kernel
// can be edited and fed back with --ir.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "cgpa/driver.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "opt/passes.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/metrics.hpp"
#include "trace/sampler.hpp"
#include "verilog/emitter.hpp"
#include "verilog/lint.hpp"
#include "verilog/testbench.hpp"

namespace {

using namespace cgpa;

struct Options {
  std::string kernel;
  std::string irFile;
  std::string loopHeader;
  std::string flow = "p1";
  std::string verilogOut;
  std::string traceOut;     ///< Chrome trace-event JSON (Perfetto).
  std::string traceCsvOut;  ///< Interval metrics CSV time-series.
  std::string statsJsonOut; ///< cgpa.simstats.v1 stats document.
  int traceSample = 100;    ///< Sampler interval in cycles.
  int workers = 4;
  int fifoDepth = 16;
  int scale = 1;
  std::uint64_t seed = 42;
  bool dumpIr = false;
  bool help = false;
};

void usage() {
  std::printf(
      "cgpac — CGPA (DAC'14) coarse-grained pipelined accelerator compiler\n"
      "\n"
      "  --kernel NAME      built-in kernel: kmeans | hash-indexing | ks |\n"
      "                     em3d | 1d-gaussblur\n"
      "  --ir FILE          compile textual IR from FILE (needs --loop)\n"
      "  --loop BLOCK       target loop header block name (with --ir)\n"
      "  --flow p1|p2|legup accelerator flow (default p1)\n"
      "  --workers N        parallel-stage workers (default 4, power of 2)\n"
      "  --fifo-depth N     FIFO entries per lane (default 16)\n"
      "  --scale N          workload scale factor (default 1)\n"
      "  --seed N           workload seed (default 42)\n"
      "  --dump-ir          print the (pre-transform) kernel IR and exit\n"
      "  --emit-verilog F   write RTL to F and a testbench to F.tb\n"
      "  --trace FILE       write a Chrome trace-event JSON of the run\n"
      "                     (load in Perfetto / chrome://tracing)\n"
      "  --trace-csv FILE   write FIFO-occupancy + per-stage-utilization\n"
      "                     CSV time-series sampled every --trace-sample\n"
      "  --trace-sample N   sampling interval in cycles (default 100)\n"
      "  --stats-json FILE  write the full run stats as JSON\n"
      "                     (schema cgpa.simstats.v1)\n"
      "  --help             this text\n"
      "\n"
      "Flags also accept --flag=value syntax.\n");
}

bool parseArgs(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept --flag=value alongside the space-separated form.
    std::string inline_;
    bool hasInline = false;
    if (arg.rfind("--", 0) == 0) {
      if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
        inline_ = arg.substr(eq + 1);
        arg.erase(eq);
        hasInline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (hasInline)
        return inline_.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--kernel") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.kernel = v;
    } else if (arg == "--ir") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.irFile = v;
    } else if (arg == "--loop") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.loopHeader = v;
    } else if (arg == "--flow") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.flow = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.workers = std::atoi(v);
    } else if (arg == "--fifo-depth") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.fifoDepth = std::atoi(v);
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.scale = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.traceOut = v;
    } else if (arg == "--trace-csv") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.traceCsvOut = v;
    } else if (arg == "--trace-sample") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.traceSample = std::atoi(v);
    } else if (arg == "--stats-json") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.statsJsonOut = v;
    } else if (arg == "--dump-ir") {
      options.dumpIr = true;
    } else if (arg == "--emit-verilog") {
      const char* v = next();
      if (v == nullptr)
        return false;
      options.verilogOut = v;
    } else if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

driver::Flow flowFromName(const std::string& name) {
  if (name == "p1")
    return driver::Flow::CgpaP1;
  if (name == "p2")
    return driver::Flow::CgpaP2;
  if (name == "legup")
    return driver::Flow::Legup;
  std::fprintf(stderr, "unknown flow '%s' (use p1|p2|legup)\n", name.c_str());
  std::exit(1);
}

int emitVerilog(const pipeline::PipelineModule& pm, const Options& options) {
  verilog::VerilogOptions vopts;
  vopts.fifoDepth = options.fifoDepth;
  const std::string rtl =
      verilog::emitPipelineVerilog(pm, hls::ScheduleOptions{}, vopts);
  const std::string tb =
      verilog::emitTestbench(pm, verilog::TestbenchOptions{});
  const std::string lint = verilog::lintReport(rtl + "\n" + tb);
  if (!lint.empty()) {
    std::fprintf(stderr, "internal error: emitted RTL failed lint:\n%s",
                 lint.c_str());
    return 1;
  }
  std::ofstream(options.verilogOut) << rtl;
  std::ofstream(options.verilogOut + ".tb") << tb;
  std::printf("wrote %s and %s.tb (lint clean)\n", options.verilogOut.c_str(),
              options.verilogOut.c_str());
  return 0;
}

int runKernelFlow(const Options& options) {
  const kernels::Kernel* kernel = kernels::kernelByName(options.kernel);
  if (kernel == nullptr) {
    std::fprintf(stderr, "unknown kernel '%s'\n", options.kernel.c_str());
    return 1;
  }
  if (options.dumpIr) {
    auto module = kernel->buildModule();
    std::printf("%s", ir::printModule(*module).c_str());
    return 0;
  }

  driver::CompileOptions compile;
  compile.partition.numWorkers = options.workers;
  const driver::Flow flow = flowFromName(options.flow);
  const driver::CompiledAccelerator accel =
      driver::compileKernel(*kernel, flow, compile);
  std::printf("kernel %s, flow %s\n", kernel->name().c_str(),
              driver::flowName(flow));
  std::printf("%s", accel.plan.describe().c_str());
  std::printf("area: %d ALUTs, %d registers, %d FSM states, %d FIFO BRAM "
              "bits\n",
              accel.area.aluts, accel.area.registers, accel.area.fsmStates,
              accel.area.fifoBramBits);

  kernels::WorkloadConfig workloadConfig;
  workloadConfig.scale = options.scale;
  workloadConfig.seed = options.seed;
  kernels::Workload work = kernel->buildWorkload(workloadConfig);
  sim::SystemConfig system;
  system.fifoDepth = options.fifoDepth;

  // Optional observability backends; a null tracer keeps the simulation
  // hook-free (identical cycles either way — see trace/tracer.hpp).
  std::unique_ptr<trace::ChromeTraceWriter> chromeTrace;
  std::unique_ptr<trace::IntervalSampler> sampler;
  sim::TeeTracer tee;
  if (!options.traceOut.empty()) {
    chromeTrace =
        std::make_unique<trace::ChromeTraceWriter>(&accel.pipelineModule);
    tee.add(chromeTrace.get());
  }
  if (!options.traceCsvOut.empty()) {
    sampler = std::make_unique<trace::IntervalSampler>(
        static_cast<std::uint64_t>(std::max(options.traceSample, 1)),
        &accel.pipelineModule);
    tee.add(sampler.get());
  }
  sim::Tracer* tracer = tee.empty() ? nullptr : &tee;

  const sim::SimResult result = sim::simulateSystem(
      accel.pipelineModule, *work.memory, work.args, system, tracer);

  kernels::Workload refWork = kernel->buildWorkload(workloadConfig);
  const std::uint64_t refReturn =
      kernel->runReference(*refWork.memory, refWork.args);
  const bool correct = result.returnValue == refReturn &&
                       work.memory->raw() == refWork.memory->raw();

  std::printf("cycles: %llu (%.1f us at 200 MHz), result %s\n",
              static_cast<unsigned long long>(result.cycles),
              result.timeMicros(200.0), correct ? "correct" : "MISMATCH");
  std::printf("cache: %llu accesses, %.1f%% hits; fifo pushes/pops: "
              "%llu/%llu; stalls mem/fifo/dep: %llu/%llu/%llu\n",
              static_cast<unsigned long long>(result.cache.accesses),
              result.cache.hitRate() * 100.0,
              static_cast<unsigned long long>(result.fifoPushes),
              static_cast<unsigned long long>(result.fifoPops),
              static_cast<unsigned long long>(result.stallMem),
              static_cast<unsigned long long>(result.stallFifo),
              static_cast<unsigned long long>(result.stallDep));
  const std::uint64_t engineCycles =
      result.cyclesActive + result.cyclesStalled;
  std::printf("engine cycles: %llu active, %llu stalled (%.1f%% utilization "
              "across %d engines)\n",
              static_cast<unsigned long long>(result.cyclesActive),
              static_cast<unsigned long long>(result.cyclesStalled),
              engineCycles == 0 ? 0.0
                                : 100.0 *
                                      static_cast<double>(result.cyclesActive) /
                                      static_cast<double>(engineCycles),
              result.enginesSpawned + 1);
  for (std::size_t c = 0; c < result.channelStats.size(); ++c) {
    const pipeline::ChannelInfo& info = accel.pipelineModule.channels[c];
    std::printf("  channel %zu (%s, stage %d->%d%s): %llu pushes, %llu "
                "pops, high water %d/%d flits\n",
                c, info.valueName.c_str(), info.producerStage,
                info.consumerStage, info.broadcast ? ", broadcast" : "",
                static_cast<unsigned long long>(result.channelStats[c].pushes),
                static_cast<unsigned long long>(result.channelStats[c].pops),
                result.channelStats[c].maxOccupancyFlits, options.fifoDepth);
  }

  if (chromeTrace != nullptr) {
    if (!chromeTrace->writeFile(options.traceOut)) {
      std::fprintf(stderr, "cannot write %s\n", options.traceOut.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu spans; open in Perfetto)\n",
                options.traceOut.c_str(), chromeTrace->numSpans());
  }
  if (sampler != nullptr) {
    if (!sampler->writeFile(options.traceCsvOut)) {
      std::fprintf(stderr, "cannot write %s\n", options.traceCsvOut.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu rows, every %llu cycles)\n",
                options.traceCsvOut.c_str(), sampler->numRows(),
                static_cast<unsigned long long>(sampler->interval()));
  }
  if (!options.statsJsonOut.empty()) {
    trace::MetricsRegistry registry;
    registry.addSimResult(result, &accel.pipelineModule, system.freqMHz);
    registry.root().set("kernel", kernel->name());
    registry.root().set("flow", driver::flowName(flow));
    registry.root().set("correct", correct);
    trace::JsonValue config = trace::JsonValue::object();
    config.set("workers", options.workers);
    config.set("fifoDepth", options.fifoDepth);
    config.set("scale", options.scale);
    config.set("seed", options.seed);
    registry.root().set("config", std::move(config));
    if (!registry.writeFile(options.statsJsonOut)) {
      std::fprintf(stderr, "cannot write %s\n", options.statsJsonOut.c_str());
      return 1;
    }
    std::printf("wrote %s\n", options.statsJsonOut.c_str());
  }

  if (!options.verilogOut.empty())
    return emitVerilog(accel.pipelineModule, options);
  return correct ? 0 : 1;
}

int runIrFlow(const Options& options) {
  std::ifstream in(options.irFile);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", options.irFile.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  ir::ParseResult parsed = ir::parseModule(text.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 1;
  }
  if (const std::string err = ir::verifyModule(*parsed.module); !err.empty()) {
    std::fprintf(stderr, "verification error: %s\n", err.c_str());
    return 1;
  }
  ir::Function* fn = parsed.module->findFunction("kernel");
  if (fn == nullptr) {
    std::fprintf(stderr, "module has no @kernel function\n");
    return 1;
  }
  if (options.loopHeader.empty()) {
    std::fprintf(stderr, "--ir requires --loop <header-block>\n");
    return 1;
  }

  opt::runScalarOptimizations(*parsed.module);
  analysis::DominatorTree dom(*fn);
  analysis::DominatorTree postDom(*fn, true);
  analysis::LoopInfo loops(*fn, dom);
  analysis::AliasAnalysis alias(*fn, *parsed.module, loops);
  analysis::ControlDependence controlDeps(*fn, postDom);
  ir::BasicBlock* header = fn->findBlock(options.loopHeader);
  if (header == nullptr || loops.loopWithHeader(header) == nullptr) {
    std::fprintf(stderr, "'%s' is not a loop header\n",
                 options.loopHeader.c_str());
    return 1;
  }
  analysis::Loop* loop = loops.loopWithHeader(header);
  analysis::Pdg pdg(*fn, *loop, alias, controlDeps);
  analysis::SccGraph sccs(pdg, [](const ir::Instruction*) { return 1.0; });

  pipeline::PartitionOptions popts;
  popts.numWorkers = options.workers;
  if (options.flow == "p2")
    popts.policy = pipeline::ReplicablePolicy::ForceParallel;
  pipeline::PipelinePlan plan =
      options.flow == "legup" ? pipeline::sequentialPlan(sccs, *loop)
                              : pipeline::partitionLoop(sccs, *loop, popts);
  std::printf("%s", plan.describe().c_str());

  const pipeline::PipelineModule pm = pipeline::transformLoop(*fn, plan, 0);
  if (const std::string err = ir::verifyModule(*parsed.module); !err.empty()) {
    std::fprintf(stderr, "transform broke the module: %s\n", err.c_str());
    return 1;
  }
  std::printf("transformed: %zu tasks, %zu channels, %zu live-outs\n",
              pm.tasks.size(), pm.channels.size(), pm.liveouts.size());
  if (options.dumpIr)
    std::printf("%s", ir::printModule(*parsed.module).c_str());
  if (!options.verilogOut.empty())
    return emitVerilog(pm, options);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parseArgs(argc, argv, options) || options.help ||
      (options.kernel.empty() && options.irFile.empty())) {
    usage();
    return options.help ? 0 : 1;
  }
  if (!options.kernel.empty())
    return runKernelFlow(options);
  return runIrFlow(options);
}
