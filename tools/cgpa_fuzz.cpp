// cgpa_fuzz: differential fuzzing driver.
//
//   cgpa_fuzz batch --seed S --count N [options]   random spec sweep
//   cgpa_fuzz replay <file.cgir>...                re-run corpus cases
//   cgpa_fuzz dump --seed S | --spec "LINE"        print a spec + its IR
//
// dump output is itself the corpus file format, so
//   cgpa_fuzz dump --spec "fuzz-spec v1 ... ops=reduction" > case.cgir
// mints a regression case directly.
//
// batch generates `count` loops from consecutive seeds, runs each through
// the differential oracle (interpreter / functional pipeline / cycle
// simulator under both execution tiers, at the requested worker counts,
// both policies), and reports
// divergences and invariant violations. Failing specs are shrunk and, with
// --corpus-out, written as .cgir regression cases.
//
// Options:
//   --seed N             base seed (default 1)
//   --count N            loops to generate in batch mode (default 100)
//   --workers a,b,c      worker counts (default 1,2,4)
//   --no-p2              skip the ForceParallel policy
//   --no-sim             skip the cycle-level leg (fast smoke)
//   --sim-backend B      cycle-sim execution tier: interp or threaded run
//                        that tier alone; auto (default) runs both and
//                        requires bit-identical results between them
//   --fifo-depth N       FIFO depth entries for the cycle sim (default 16)
//   --max-cycles N       cycle cap for the sim legs (default: the same
//                        sim::kDefaultMaxCycles knob cgpac uses)
//   --faults P           add a fault-injected sim leg: seeded timing
//                        perturbations fired with probability P per
//                        decision point (FIFO stalls, late wakeups,
//                        slow cache responses); results must still
//                        match golden
//   --fault-seed N       seed for the fault decision stream (default 1)
//   --corpus-out DIR     write shrunk failing cases into DIR
//   --require-coverage   fail unless the batch exercised all SCC classes,
//                        a heavyweight replicable, a parallel stage, an
//                        early exit, and >= 2 pipeline shapes
//   --verbose            per-seed progress lines
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/loopgen.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/argparse.hpp"

namespace {

using namespace cgpa;

struct CliOptions {
  std::uint64_t seed = 1;
  std::string specLine; ///< dump mode: explicit spec instead of a seed.
  int count = 100;
  fuzz::OracleOptions oracle;
  std::string corpusOut;
  bool requireCoverage = false;
  bool verbose = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: cgpa_fuzz batch|replay|dump [options] (see header)\n");
  return 2;
}

bool parseWorkerList(const std::string& text, std::vector<int>& out) {
  out.clear();
  std::string current;
  for (const char c : text + ",") {
    if (c == ',') {
      if (current.empty())
        return false;
      out.push_back(std::atoi(current.c_str()));
      if (out.back() < 1)
        return false;
      current.clear();
    } else {
      current += c;
    }
  }
  return !out.empty();
}

std::string describeSpec(const fuzz::LoopSpec& spec) {
  return fuzz::serializeSpec(spec);
}

/// Run the oracle, returning the report (convenience for the shrinker's
/// predicate and the batch loop).
fuzz::OracleReport check(const fuzz::LoopSpec& spec,
                         const fuzz::OracleOptions& options) {
  return fuzz::runOracle(spec, options);
}

int runBatch(const CliOptions& cli) {
  fuzz::OracleCoverage coverage;
  int failures = 0;
  int corpusWritten = 0;
  std::uint64_t totalConfigs = 0;
  std::uint64_t totalInvariantChecks = 0;

  for (int i = 0; i < cli.count; ++i) {
    const std::uint64_t seed = cli.seed + static_cast<std::uint64_t>(i);
    const fuzz::LoopSpec spec = fuzz::specFromSeed(seed);
    const fuzz::OracleReport report = check(spec, cli.oracle);
    totalConfigs += report.configs.size();
    totalInvariantChecks += static_cast<std::uint64_t>(report.invariantChecks);

    coverage.parallelScc |= report.coverage.parallelScc;
    coverage.replicableScc |= report.coverage.replicableScc;
    coverage.sequentialScc |= report.coverage.sequentialScc;
    coverage.heavyReplicable |= report.coverage.heavyReplicable;
    coverage.parallelStage |= report.coverage.parallelStage;
    coverage.earlyExitTaken |= report.coverage.earlyExitTaken;
    coverage.shapes.insert(report.coverage.shapes.begin(),
                           report.coverage.shapes.end());

    if (cli.verbose)
      std::printf("seed %llu: %s %s\n",
                  static_cast<unsigned long long>(seed),
                  report.ok ? "ok" : "FAIL", describeSpec(spec).c_str());
    if (report.ok)
      continue;

    ++failures;
    std::printf("FAIL seed %llu: %s\n", static_cast<unsigned long long>(seed),
                describeSpec(spec).c_str());
    for (const std::string& error : report.errors)
      std::printf("  %s\n", error.c_str());

    // Shrink, preserving "some oracle failure" as the property.
    const fuzz::ShrinkResult shrunk = fuzz::shrinkSpec(
        spec,
        [&](const fuzz::LoopSpec& candidate) {
          return !check(candidate, cli.oracle).ok;
        });
    std::printf("  shrunk (%d reductions, %d attempts): %s\n",
                shrunk.reductions, shrunk.attempts,
                describeSpec(shrunk.spec).c_str());
    if (!cli.corpusOut.empty()) {
      const std::string path = cli.corpusOut + "/seed" + std::to_string(seed) +
                               ".cgir";
      if (fuzz::writeCorpusFile(path, shrunk.spec)) {
        ++corpusWritten;
        std::printf("  wrote %s\n", path.c_str());
      } else {
        std::printf("  could not write %s\n", path.c_str());
      }
    }
  }

  std::string shapes;
  for (const std::string& shape : coverage.shapes) {
    if (!shapes.empty())
      shapes += ' ';
    shapes += shape;
  }
  std::printf("fuzz: %d loops, %llu configs, %llu invariant checks, "
              "%d failures\n",
              cli.count, static_cast<unsigned long long>(totalConfigs),
              static_cast<unsigned long long>(totalInvariantChecks), failures);
  std::printf("coverage: parallel=%d replicable=%d sequential=%d heavy=%d "
              "parallel-stage=%d early-exit=%d shapes=[%s]\n",
              coverage.parallelScc, coverage.replicableScc,
              coverage.sequentialScc, coverage.heavyReplicable,
              coverage.parallelStage, coverage.earlyExitTaken, shapes.c_str());
  if (corpusWritten > 0)
    std::printf("corpus: wrote %d shrunk cases to %s\n", corpusWritten,
                cli.corpusOut.c_str());

  if (cli.requireCoverage) {
    const bool covered = coverage.parallelScc && coverage.replicableScc &&
                         coverage.sequentialScc && coverage.heavyReplicable &&
                         coverage.parallelStage && coverage.earlyExitTaken &&
                         coverage.shapes.size() >= 2;
    if (!covered) {
      std::fprintf(stderr, "cgpa_fuzz: coverage requirement not met\n");
      return 1;
    }
  }
  return failures == 0 ? 0 : 1;
}

int runReplay(const CliOptions& cli, const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "cgpa_fuzz replay: no corpus files given\n");
    return 2;
  }
  int failures = 0;
  for (const std::string& path : files) {
    std::string error;
    const auto spec = fuzz::readCorpusSpec(path, &error);
    if (!spec.has_value()) {
      std::fprintf(stderr, "cgpa_fuzz: %s: %s\n", path.c_str(), error.c_str());
      ++failures;
      continue;
    }
    const fuzz::OracleReport report = check(*spec, cli.oracle);
    std::printf("%s: %s (%s)\n", path.c_str(), report.ok ? "ok" : "FAIL",
                describeSpec(*spec).c_str());
    if (!report.ok) {
      for (const std::string& e : report.errors)
        std::printf("  %s\n", e.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int runDump(const CliOptions& cli) {
  fuzz::LoopSpec spec;
  if (!cli.specLine.empty()) {
    std::string error;
    const auto parsed = fuzz::parseSpecLine(cli.specLine, &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "cgpa_fuzz: bad --spec: %s\n", error.c_str());
      return 2;
    }
    spec = *parsed;
  } else {
    spec = fuzz::specFromSeed(cli.seed);
  }
  fuzz::GeneratedLoop loop = fuzz::buildLoop(spec);
  std::printf("; %s\n%s", describeSpec(spec).c_str(),
              ir::printModule(*loop.module).c_str());
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  support::ArgParser args(argc, argv);
  if (args.done())
    return usage();
  const std::string mode = args.positional();
  CliOptions cli;
  std::vector<std::string> positional;
  // Shared flag-parsing cursor (support/argparse.hpp): any failure —
  // missing value, malformed number, unknown flag — surfaces as an
  // InvalidArgument Status and maps to the usage exit code 2.
  while (!args.done()) {
    Status status;
    if (args.matchFlag("seed")) {
      Expected<std::uint64_t> v = args.uintValue();
      if (v.ok())
        cli.seed = *v;
      status = v.status();
    } else if (args.matchFlag("spec")) {
      Expected<std::string> v = args.value();
      if (v.ok())
        cli.specLine = *v;
      status = v.status();
    } else if (args.matchFlag("count")) {
      Expected<std::int64_t> v = args.intValue();
      if (v.ok())
        cli.count = static_cast<int>(*v);
      status = v.status();
    } else if (args.matchFlag("workers")) {
      Expected<std::string> v = args.value();
      if (!v.ok())
        status = v.status();
      else if (!parseWorkerList(*v, cli.oracle.workerCounts))
        status = Status::error(ErrorCode::InvalidArgument,
                               "bad --workers list: '" + *v + "'");
    } else if (args.matchFlag("no-p2")) {
      cli.oracle.runP2 = false;
    } else if (args.matchFlag("no-sim")) {
      cli.oracle.runCycleSim = false;
    } else if (args.matchFlag("sim-backend")) {
      Expected<std::string> v = args.value();
      if (!v.ok())
        status = v.status();
      else if (!sim::parseSimBackend(*v, cli.oracle.simBackend))
        status = Status::error(ErrorCode::InvalidArgument,
                               "--sim-backend needs interp, threaded, or "
                               "auto; got '" + *v + "'");
    } else if (args.matchFlag("fifo-depth")) {
      Expected<std::int64_t> v = args.intValue();
      if (v.ok())
        cli.oracle.fifoDepth = static_cast<int>(*v);
      status = v.status();
    } else if (args.matchFlag("max-cycles")) {
      Expected<std::uint64_t> v = args.uintValue();
      if (v.ok())
        cli.oracle.maxCycles = *v;
      status = v.status();
    } else if (args.matchFlag("faults")) {
      Expected<double> v = args.doubleValue();
      if (!v.ok())
        status = v.status();
      else if (*v < 0.0 || *v > 1.0)
        status = Status::error(ErrorCode::InvalidArgument,
                               "--faults needs a probability in [0,1]");
      else
        cli.oracle.faults = sim::FaultPlan::uniform(cli.oracle.faults.seed, *v);
    } else if (args.matchFlag("fault-seed")) {
      Expected<std::uint64_t> v = args.uintValue();
      if (v.ok())
        cli.oracle.faults.seed = *v;
      status = v.status();
    } else if (args.matchFlag("corpus-out")) {
      Expected<std::string> v = args.value();
      if (v.ok())
        cli.corpusOut = *v;
      status = v.status();
    } else if (args.matchFlag("require-coverage")) {
      cli.requireCoverage = true;
    } else if (args.matchFlag("verbose")) {
      cli.verbose = true;
    } else if (args.isFlag()) {
      status = args.unknown();
    } else {
      positional.push_back(args.positional());
    }
    if (!status.ok()) {
      std::fprintf(stderr, "cgpa_fuzz: %s\n", status.toString().c_str());
      return usage();
    }
  }

  if (mode == "batch")
    return runBatch(cli);
  if (mode == "replay")
    return runReplay(cli, positional);
  if (mode == "dump")
    return runDump(cli);
  return usage();
}
