// cgpa_fuzz: differential fuzzing driver.
//
//   cgpa_fuzz batch --seed S --count N [options]   random spec sweep
//   cgpa_fuzz replay <file.cgir>...                re-run corpus cases
//   cgpa_fuzz dump --seed S | --spec "LINE"        print a spec + its IR
//
// dump output is itself the corpus file format, so
//   cgpa_fuzz dump --spec "fuzz-spec v1 ... ops=reduction" > case.cgir
// mints a regression case directly.
//
// batch generates `count` loops from consecutive seeds, runs each through
// the three-executor oracle (interpreter / functional pipeline / cycle
// simulator at the requested worker counts, both policies), and reports
// divergences and invariant violations. Failing specs are shrunk and, with
// --corpus-out, written as .cgir regression cases.
//
// Options:
//   --seed N             base seed (default 1)
//   --count N            loops to generate in batch mode (default 100)
//   --workers a,b,c      worker counts (default 1,2,4)
//   --no-p2              skip the ForceParallel policy
//   --no-sim             skip the cycle-level leg (fast smoke)
//   --fifo-depth N       FIFO depth entries for the cycle sim (default 16)
//   --max-cycles N       cycle cap for the sim legs (default: the same
//                        sim::kDefaultMaxCycles knob cgpac uses)
//   --faults P           add a fault-injected sim leg: seeded timing
//                        perturbations fired with probability P per
//                        decision point (FIFO stalls, late wakeups,
//                        slow cache responses); results must still
//                        match golden
//   --fault-seed N       seed for the fault decision stream (default 1)
//   --corpus-out DIR     write shrunk failing cases into DIR
//   --require-coverage   fail unless the batch exercised all SCC classes,
//                        a heavyweight replicable, a parallel stage, an
//                        early exit, and >= 2 pipeline shapes
//   --verbose            per-seed progress lines
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/loopgen.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace {

using namespace cgpa;

struct CliOptions {
  std::uint64_t seed = 1;
  std::string specLine; ///< dump mode: explicit spec instead of a seed.
  int count = 100;
  fuzz::OracleOptions oracle;
  std::string corpusOut;
  bool requireCoverage = false;
  bool verbose = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: cgpa_fuzz batch|replay|dump [options] (see header)\n");
  return 2;
}

bool parseWorkerList(const std::string& text, std::vector<int>& out) {
  out.clear();
  std::string current;
  for (const char c : text + ",") {
    if (c == ',') {
      if (current.empty())
        return false;
      out.push_back(std::atoi(current.c_str()));
      if (out.back() < 1)
        return false;
      current.clear();
    } else {
      current += c;
    }
  }
  return !out.empty();
}

std::string describeSpec(const fuzz::LoopSpec& spec) {
  return fuzz::serializeSpec(spec);
}

/// Run the oracle, returning the report (convenience for the shrinker's
/// predicate and the batch loop).
fuzz::OracleReport check(const fuzz::LoopSpec& spec,
                         const fuzz::OracleOptions& options) {
  return fuzz::runOracle(spec, options);
}

int runBatch(const CliOptions& cli) {
  fuzz::OracleCoverage coverage;
  int failures = 0;
  int corpusWritten = 0;
  std::uint64_t totalConfigs = 0;
  std::uint64_t totalInvariantChecks = 0;

  for (int i = 0; i < cli.count; ++i) {
    const std::uint64_t seed = cli.seed + static_cast<std::uint64_t>(i);
    const fuzz::LoopSpec spec = fuzz::specFromSeed(seed);
    const fuzz::OracleReport report = check(spec, cli.oracle);
    totalConfigs += report.configs.size();
    totalInvariantChecks += static_cast<std::uint64_t>(report.invariantChecks);

    coverage.parallelScc |= report.coverage.parallelScc;
    coverage.replicableScc |= report.coverage.replicableScc;
    coverage.sequentialScc |= report.coverage.sequentialScc;
    coverage.heavyReplicable |= report.coverage.heavyReplicable;
    coverage.parallelStage |= report.coverage.parallelStage;
    coverage.earlyExitTaken |= report.coverage.earlyExitTaken;
    coverage.shapes.insert(report.coverage.shapes.begin(),
                           report.coverage.shapes.end());

    if (cli.verbose)
      std::printf("seed %llu: %s %s\n",
                  static_cast<unsigned long long>(seed),
                  report.ok ? "ok" : "FAIL", describeSpec(spec).c_str());
    if (report.ok)
      continue;

    ++failures;
    std::printf("FAIL seed %llu: %s\n", static_cast<unsigned long long>(seed),
                describeSpec(spec).c_str());
    for (const std::string& error : report.errors)
      std::printf("  %s\n", error.c_str());

    // Shrink, preserving "some oracle failure" as the property.
    const fuzz::ShrinkResult shrunk = fuzz::shrinkSpec(
        spec,
        [&](const fuzz::LoopSpec& candidate) {
          return !check(candidate, cli.oracle).ok;
        });
    std::printf("  shrunk (%d reductions, %d attempts): %s\n",
                shrunk.reductions, shrunk.attempts,
                describeSpec(shrunk.spec).c_str());
    if (!cli.corpusOut.empty()) {
      const std::string path = cli.corpusOut + "/seed" + std::to_string(seed) +
                               ".cgir";
      if (fuzz::writeCorpusFile(path, shrunk.spec)) {
        ++corpusWritten;
        std::printf("  wrote %s\n", path.c_str());
      } else {
        std::printf("  could not write %s\n", path.c_str());
      }
    }
  }

  std::string shapes;
  for (const std::string& shape : coverage.shapes) {
    if (!shapes.empty())
      shapes += ' ';
    shapes += shape;
  }
  std::printf("fuzz: %d loops, %llu configs, %llu invariant checks, "
              "%d failures\n",
              cli.count, static_cast<unsigned long long>(totalConfigs),
              static_cast<unsigned long long>(totalInvariantChecks), failures);
  std::printf("coverage: parallel=%d replicable=%d sequential=%d heavy=%d "
              "parallel-stage=%d early-exit=%d shapes=[%s]\n",
              coverage.parallelScc, coverage.replicableScc,
              coverage.sequentialScc, coverage.heavyReplicable,
              coverage.parallelStage, coverage.earlyExitTaken, shapes.c_str());
  if (corpusWritten > 0)
    std::printf("corpus: wrote %d shrunk cases to %s\n", corpusWritten,
                cli.corpusOut.c_str());

  if (cli.requireCoverage) {
    const bool covered = coverage.parallelScc && coverage.replicableScc &&
                         coverage.sequentialScc && coverage.heavyReplicable &&
                         coverage.parallelStage && coverage.earlyExitTaken &&
                         coverage.shapes.size() >= 2;
    if (!covered) {
      std::fprintf(stderr, "cgpa_fuzz: coverage requirement not met\n");
      return 1;
    }
  }
  return failures == 0 ? 0 : 1;
}

int runReplay(const CliOptions& cli, const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "cgpa_fuzz replay: no corpus files given\n");
    return 2;
  }
  int failures = 0;
  for (const std::string& path : files) {
    std::string error;
    const auto spec = fuzz::readCorpusSpec(path, &error);
    if (!spec.has_value()) {
      std::fprintf(stderr, "cgpa_fuzz: %s: %s\n", path.c_str(), error.c_str());
      ++failures;
      continue;
    }
    const fuzz::OracleReport report = check(*spec, cli.oracle);
    std::printf("%s: %s (%s)\n", path.c_str(), report.ok ? "ok" : "FAIL",
                describeSpec(*spec).c_str());
    if (!report.ok) {
      for (const std::string& e : report.errors)
        std::printf("  %s\n", e.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int runDump(const CliOptions& cli) {
  fuzz::LoopSpec spec;
  if (!cli.specLine.empty()) {
    std::string error;
    const auto parsed = fuzz::parseSpecLine(cli.specLine, &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "cgpa_fuzz: bad --spec: %s\n", error.c_str());
      return 2;
    }
    spec = *parsed;
  } else {
    spec = fuzz::specFromSeed(cli.seed);
  }
  fuzz::GeneratedLoop loop = fuzz::buildLoop(spec);
  std::printf("; %s\n%s", describeSpec(spec).c_str(),
              ir::printModule(*loop.module).c_str());
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2)
    return usage();
  const std::string mode = argv[1];
  CliOptions cli;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cgpa_fuzz: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed")
      cli.seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--spec")
      cli.specLine = value();
    else if (arg == "--count")
      cli.count = std::atoi(value());
    else if (arg == "--workers") {
      if (!parseWorkerList(value(), cli.oracle.workerCounts))
        return usage();
    } else if (arg == "--no-p2")
      cli.oracle.runP2 = false;
    else if (arg == "--no-sim")
      cli.oracle.runCycleSim = false;
    else if (arg == "--fifo-depth")
      cli.oracle.fifoDepth = std::atoi(value());
    else if (arg == "--max-cycles")
      cli.oracle.maxCycles = std::strtoull(value(), nullptr, 10);
    else if (arg == "--faults") {
      const double prob = std::atof(value());
      if (prob < 0.0 || prob > 1.0) {
        std::fprintf(stderr, "cgpa_fuzz: --faults needs a probability in "
                             "[0,1]\n");
        return 2;
      }
      cli.oracle.faults =
          sim::FaultPlan::uniform(cli.oracle.faults.seed, prob);
    } else if (arg == "--fault-seed")
      cli.oracle.faults.seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--corpus-out")
      cli.corpusOut = value();
    else if (arg == "--require-coverage")
      cli.requireCoverage = true;
    else if (arg == "--verbose")
      cli.verbose = true;
    else if (!arg.empty() && arg[0] == '-')
      return usage();
    else
      positional.push_back(arg);
  }

  if (mode == "batch")
    return runBatch(cli);
  if (mode == "replay")
    return runReplay(cli, positional);
  if (mode == "dump")
    return runDump(cli);
  return usage();
}
