// cgpa_client — send cgpa.job.v1 frames to a running cgpad and print the
// cgpa.jobresult.v1 responses, one per line.
//
// Either describe one job with cgpac-style flags (optionally repeated
// with --repeat, ids "<id>-0", "<id>-1", ...) or replay a JSONL file of
// prebuilt frames with --jobs. Responses may arrive out of request order
// (match them by id); the client simply prints each line as it arrives
// and exits once every request is answered.

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/framing.hpp"
#include "serve/job.hpp"
#include "support/argparse.hpp"

namespace {

using namespace cgpa;

struct Options {
  std::string socketPath; ///< --connect: Unix-domain socket path.
  int port = -1;          ///< --port: loopback TCP port.
  serve::JobRequest job;  ///< Flag-built job (op=run).
  bool haveJobFlags = false;
  std::string jobsFile;   ///< --jobs: JSONL frames to replay verbatim.
  std::uint64_t repeat = 1;
  std::string id = "job";
  bool stats = false;     ///< Append an op=stats request.
  bool shutdown = false;  ///< Append an op=shutdown request.
  double watchSecs = 0;   ///< --stats-watch: poll interval (0 = off).
  std::uint64_t watchCount = 0; ///< --stats-watch-count: polls (0 = forever).
  bool help = false;
};

void printUsage() {
  std::printf(
      "cgpa_client — submit jobs to a running cgpad\n"
      "\n"
      "  --connect PATH     cgpad Unix-domain socket\n"
      "  --port N           cgpad loopback TCP port\n"
      "  --kernel NAME      job: built-in kernel name\n"
      "  --spec LINE        job: fuzz-spec v1 line\n"
      "  --flow p1|p2|legup job flow (default p1)\n"
      "  --workers N        job workers (default 4)\n"
      "  --fifo-depth N     job FIFO depth (default 16)\n"
      "  --scale N          job workload scale (default 1)\n"
      "  --seed N           job workload seed (default 42)\n"
      "  --sim-backend B    interp | threaded | auto (default auto)\n"
      "  --max-cycles N     job cycle cap (default: sim default)\n"
      "  --id TOKEN         correlation id prefix (default \"job\")\n"
      "  --repeat N         send the job N times (default 1)\n"
      "  --trace            request each job's cgpa.jobtrace.v1 phase\n"
      "                     ledger and pretty-print it on stderr\n"
      "  --jobs FILE        replay raw cgpa.job.v1 JSONL frames instead\n"
      "  --stats            also request a cgpa.serverstats.v1 snapshot\n"
      "  --stats-watch SECS poll serverstats every SECS seconds and print\n"
      "                     a one-line delta summary (excludes jobs)\n"
      "  --stats-watch-count N\n"
      "                     stop --stats-watch after N polls (default:\n"
      "                     run until the connection drops)\n"
      "  --shutdown         finally ask the daemon to shut down\n"
      "  --help             this text\n"
      "\n"
      "Exit codes: 0 all responses ok; 1 any ok=false / I/O error;\n"
      "2 usage.\n");
}

Status parseArgs(int argc, char** argv, Options& options) {
  support::ArgParser args(argc, argv);
  auto text = [&args](std::string& out) -> Status {
    Expected<std::string> v = args.value();
    if (!v.ok())
      return v.status();
    out = *v;
    return Status::success();
  };
  auto integer = [&args](int& out) -> Status {
    Expected<std::int64_t> v = args.intValue();
    if (!v.ok())
      return v.status();
    out = static_cast<int>(*v);
    return Status::success();
  };
  auto u64 = [&args](std::uint64_t& out) -> Status {
    Expected<std::uint64_t> v = args.uintValue();
    if (!v.ok())
      return v.status();
    out = *v;
    return Status::success();
  };
  while (!args.done()) {
    Status status;
    bool jobFlag = true;
    if (args.matchFlag("kernel"))
      status = text(options.job.kernel);
    else if (args.matchFlag("spec"))
      status = text(options.job.spec);
    else if (args.matchFlag("flow"))
      status = text(options.job.flow);
    else if (args.matchFlag("workers"))
      status = integer(options.job.workers);
    else if (args.matchFlag("fifo-depth"))
      status = integer(options.job.fifoDepth);
    else if (args.matchFlag("scale"))
      status = integer(options.job.scale);
    else if (args.matchFlag("seed"))
      status = u64(options.job.seed);
    else if (args.matchFlag("sim-backend")) {
      std::string name;
      status = text(name);
      if (status.ok() && !sim::parseSimBackend(name, options.job.backend))
        status = Status::error(ErrorCode::InvalidArgument,
                               "--sim-backend needs interp, threaded, or "
                               "auto; got '" + name + "'");
    } else if (args.matchFlag("max-cycles"))
      status = u64(options.job.maxCycles);
    else if (args.matchFlag("trace"))
      options.job.trace = true;
    else {
      jobFlag = false;
      if (args.matchFlag("connect"))
        status = text(options.socketPath);
      else if (args.matchFlag("port"))
        status = integer(options.port);
      else if (args.matchFlag("id"))
        status = text(options.id);
      else if (args.matchFlag("repeat"))
        status = u64(options.repeat);
      else if (args.matchFlag("jobs"))
        status = text(options.jobsFile);
      else if (args.matchFlag("stats"))
        options.stats = true;
      else if (args.matchFlag("stats-watch")) {
        Expected<double> v = args.doubleValue();
        if (!v.ok())
          status = v.status();
        else if (*v <= 0)
          status = Status::error(ErrorCode::InvalidArgument,
                                 "--stats-watch needs a positive interval");
        else
          options.watchSecs = *v;
      } else if (args.matchFlag("stats-watch-count"))
        status = u64(options.watchCount);
      else if (args.matchFlag("shutdown"))
        options.shutdown = true;
      else if (args.matchFlag("help", "-h"))
        options.help = true;
      else
        return args.unknown();
    }
    if (!status.ok())
      return status;
    if (jobFlag)
      options.haveJobFlags = true;
  }
  if (options.help)
    return Status::success();
  if (options.socketPath.empty() == (options.port < 0))
    return Status::error(ErrorCode::InvalidArgument,
                         "pick exactly one of --connect or --port");
  if (options.watchSecs > 0) {
    if (options.haveJobFlags || !options.jobsFile.empty() || options.stats ||
        options.shutdown)
      return Status::error(ErrorCode::InvalidArgument,
                           "--stats-watch is a standalone mode (only "
                           "--connect/--port/--id/--stats-watch-count "
                           "combine with it)");
    return Status::success();
  }
  if (options.watchCount != 0)
    return Status::error(ErrorCode::InvalidArgument,
                         "--stats-watch-count needs --stats-watch");
  if (options.haveJobFlags && !options.jobsFile.empty())
    return Status::error(ErrorCode::InvalidArgument,
                         "--jobs excludes per-job flags");
  if (!options.haveJobFlags && options.jobsFile.empty() && !options.stats &&
      !options.shutdown)
    return Status::error(ErrorCode::InvalidArgument,
                         "nothing to send: give job flags, --jobs, "
                         "--stats or --shutdown");
  if (options.haveJobFlags &&
      options.job.kernel.empty() == options.job.spec.empty())
    return Status::error(ErrorCode::InvalidArgument,
                         "a job needs exactly one of --kernel or --spec");
  return Status::success();
}

Expected<int> connectTo(const Options& options) {
  if (!options.socketPath.empty()) {
    sockaddr_un addr{};
    if (options.socketPath.size() >= sizeof(addr.sun_path))
      return Status::error(ErrorCode::InvalidArgument,
                           "socket path too long: " + options.socketPath);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
      return Status::error(ErrorCode::IoError,
                           std::string("socket: ") + std::strerror(errno));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      const int err = errno;
      ::close(fd);
      return Status::error(ErrorCode::IoError,
                           "connect(" + options.socketPath +
                               "): " + std::strerror(err));
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::error(ErrorCode::IoError,
                         std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return Status::error(ErrorCode::IoError,
                         "connect(127.0.0.1:" + std::to_string(options.port) +
                             "): " + std::strerror(err));
  }
  return fd;
}

/// Pretty-print a response's embedded cgpa.jobtrace.v1 ledger on stderr
/// (stdout stays machine-clean JSONL).
void printTraceSummary(const trace::JsonValue& response) {
  const trace::JsonValue* traceDoc = response.find("trace");
  if (traceDoc == nullptr)
    return;
  const trace::JsonValue* phases = traceDoc->find("phases");
  const trace::JsonValue* total = traceDoc->find("endToEndNanos");
  if (phases == nullptr || total == nullptr || !phases->isObject())
    return;
  const trace::JsonValue* id = response.find("id");
  const double endToEnd = total->asDouble();
  std::fprintf(stderr, "cgpa_client: %s end-to-end %.3f ms\n",
               id != nullptr ? id->dump(0).c_str() : "?", endToEnd / 1e6);
  for (const auto& [name, value] : phases->members()) {
    const double nanos = value.asDouble();
    std::fprintf(stderr, "  %-12s %10.3f ms  %5.1f%%\n", name.c_str(),
                 nanos / 1e6, endToEnd > 0 ? 100.0 * nanos / endToEnd : 0.0);
  }
}

/// --stats-watch: poll op=stats on one connection and print a one-line
/// delta summary per poll. Jobs/sec is derived from the server's own
/// uptimeSeconds delta, so client-side scheduling jitter cancels out.
int watchStats(const Options& options) {
  Expected<int> fd = connectTo(options);
  if (!fd.ok()) {
    std::fprintf(stderr, "cgpa_client: %s\n", fd.status().message().c_str());
    return 1;
  }
  serve::FrameReader reader = serve::fdFrameReader(*fd);
  std::uint64_t prevSettled = 0;
  double prevUptime = 0;
  for (std::uint64_t poll = 0;
       options.watchCount == 0 || poll < options.watchCount; ++poll) {
    if (poll > 0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.watchSecs));
    trace::JsonValue request = trace::JsonValue::object();
    request.set("schema", serve::kJobSchema);
    request.set("id", options.id + "-watch-" + std::to_string(poll));
    request.set("op", "stats");
    if (Status status = serve::writeFrame(*fd, request.dump(0));
        !status.ok()) {
      std::fprintf(stderr, "cgpa_client: %s\n", status.message().c_str());
      ::close(*fd);
      return 1;
    }
    Expected<std::optional<std::string>> frame = reader.next();
    if (!frame.ok() || !frame->has_value()) {
      std::fprintf(stderr, "cgpa_client: connection closed during "
                           "--stats-watch\n");
      ::close(*fd);
      return 1;
    }
    const std::optional<trace::JsonValue> doc = trace::parseJson(**frame);
    const trace::JsonValue* stats =
        doc ? doc->find("serverStats") : nullptr;
    if (stats == nullptr) {
      std::fprintf(stderr, "cgpa_client: stats response carried no "
                           "serverStats\n");
      ::close(*fd);
      return 1;
    }
    const auto uintField = [&](const char* section,
                               const char* key) -> std::uint64_t {
      const trace::JsonValue* holder = stats->find(section);
      const trace::JsonValue* v =
          holder != nullptr ? holder->find(key) : nullptr;
      return v != nullptr ? v->asUint() : 0;
    };
    const std::uint64_t completed = uintField("jobs", "completed");
    const std::uint64_t failed = uintField("jobs", "failed");
    const std::uint64_t inflight = uintField("jobs", "inflight");
    const std::uint64_t lookups = uintField("cache", "lookups");
    const std::uint64_t hits = uintField("cache", "hits");
    const trace::JsonValue* uptimeV = stats->find("uptimeSeconds");
    const double uptime = uptimeV != nullptr ? uptimeV->asDouble() : 0;
    double p99Nanos = 0;
    if (const trace::JsonValue* latency = stats->find("latency");
        latency != nullptr) {
      if (const trace::JsonValue* classes = latency->find("endToEnd");
          classes != nullptr)
        for (const char* cls : {"kernel", "spec"})
          if (const trace::JsonValue* hist = classes->find(cls);
              hist != nullptr)
            if (const trace::JsonValue* p99 = hist->find("p99Nanos");
                p99 != nullptr && p99->asDouble() > p99Nanos)
              p99Nanos = p99->asDouble();
    }
    const std::uint64_t settled = completed + failed;
    const double window = uptime - prevUptime;
    const double rate =
        window > 0
            ? static_cast<double>(settled - prevSettled) / window
            : 0;
    std::printf("t=%.1fs jobs=%llu (+%.1f/s) inflight=%llu "
                "cacheHit=%.1f%% p99=%.2fms\n",
                uptime, static_cast<unsigned long long>(settled), rate,
                static_cast<unsigned long long>(inflight),
                lookups > 0
                    ? 100.0 * static_cast<double>(hits) /
                          static_cast<double>(lookups)
                    : 0.0,
                p99Nanos / 1e6);
    std::fflush(stdout);
    prevSettled = settled;
    prevUptime = uptime;
  }
  ::close(*fd);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  Options options;
  if (Status status = parseArgs(argc, argv, options); !status.ok()) {
    std::fprintf(stderr, "cgpa_client: %s\n", status.message().c_str());
    return 2;
  }
  if (options.help) {
    printUsage();
    return 0;
  }
  if (options.watchSecs > 0)
    return watchStats(options);

  // Assemble the outgoing frames first so connect-to-close is one pass.
  std::vector<std::string> frames;
  if (!options.jobsFile.empty()) {
    std::ifstream in(options.jobsFile);
    if (!in) {
      std::fprintf(stderr, "cgpa_client: cannot read %s\n",
                   options.jobsFile.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line))
      if (!line.empty())
        frames.push_back(line);
  } else if (options.haveJobFlags) {
    for (std::uint64_t i = 0; i < options.repeat; ++i) {
      serve::JobRequest job = options.job;
      job.id = trace::JsonValue(options.id + "-" + std::to_string(i));
      frames.push_back(serve::jobToJson(job).dump(0));
    }
  }
  if (options.stats) {
    trace::JsonValue doc = trace::JsonValue::object();
    doc.set("schema", serve::kJobSchema);
    doc.set("id", options.id + "-stats");
    doc.set("op", "stats");
    frames.push_back(doc.dump(0));
  }
  if (options.shutdown) {
    trace::JsonValue doc = trace::JsonValue::object();
    doc.set("schema", serve::kJobSchema);
    doc.set("id", options.id + "-shutdown");
    doc.set("op", "shutdown");
    frames.push_back(doc.dump(0));
  }

  Expected<int> fd = connectTo(options);
  if (!fd.ok()) {
    std::fprintf(stderr, "cgpa_client: %s\n", fd.status().message().c_str());
    return 1;
  }
  for (const std::string& frame : frames)
    if (Status status = serve::writeFrame(*fd, frame); !status.ok()) {
      std::fprintf(stderr, "cgpa_client: %s\n", status.message().c_str());
      ::close(*fd);
      return 1;
    }

  serve::FrameReader reader = serve::fdFrameReader(*fd);
  bool allOk = true;
  std::size_t received = 0;
  while (received < frames.size()) {
    Expected<std::optional<std::string>> frame = reader.next();
    if (!frame.ok()) {
      std::fprintf(stderr, "cgpa_client: %s\n",
                   frame.status().message().c_str());
      ::close(*fd);
      return 1;
    }
    if (!frame->has_value()) {
      std::fprintf(stderr,
                   "cgpa_client: connection closed after %zu of %zu "
                   "responses\n",
                   received, frames.size());
      ::close(*fd);
      return 1;
    }
    std::printf("%s\n", (*frame)->c_str());
    const std::optional<trace::JsonValue> doc = trace::parseJson(**frame);
    const trace::JsonValue* ok = doc ? doc->find("ok") : nullptr;
    if (ok == nullptr || !ok->asBool())
      allOk = false;
    if (doc)
      printTraceSummary(*doc);
    ++received;
  }
  ::close(*fd);
  return allOk ? 0 : 1;
}
