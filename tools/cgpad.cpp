// cgpad — the CGPA batched compile+simulate daemon.
//
// Accepts newline-delimited cgpa.job.v1 frames (see src/serve/job.hpp)
// over a Unix-domain socket, a loopback TCP port, stdin/stdout, or a
// file pair, and answers each with a cgpa.jobresult.v1 frame. Jobs are
// dispatched to a fixed worker pool sharing one compiled-plan cache;
// results are bit-identical to what `cgpac` produces for the same
// request, no matter the transport, worker count, or cache state.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include "serve/server.hpp"
#include "support/argparse.hpp"

namespace {

using namespace cgpa;

struct Options {
  int workers = 4;
  std::uint64_t cacheEntries = 32;
  std::uint64_t maxFrameBytes = serve::kDefaultMaxFrameBytes;
  std::string socketPath; ///< --socket: Unix-domain listener.
  int port = -1;          ///< --port: loopback TCP listener (0=ephemeral).
  int metricsPort = -1;   ///< --metrics-port: HTTP observer (0=ephemeral).
  bool stdio = false;     ///< --stdio: serve stdin -> stdout, in order.
  std::string inFile;     ///< --in/--out: file-driven batch, in order.
  std::string outFile;
  std::string statsJsonOut; ///< final cgpa.serverstats.v1 snapshot.
  bool help = false;
};

void printUsage() {
  std::printf(
      "cgpad — CGPA batched compile+simulate daemon\n"
      "\n"
      "  --workers N          worker threads (default 4)\n"
      "  --cache-entries N    plan-cache capacity (default 32; 0=unbounded)\n"
      "  --max-frame-bytes N  per-frame size cap (default 1 MiB)\n"
      "  --socket PATH        listen on a Unix-domain socket\n"
      "  --port N             listen on loopback TCP port N (0 picks an\n"
      "                       ephemeral port; the bound port is printed)\n"
      "  --metrics-port N     serve the read-only HTTP observer on\n"
      "                       loopback port N (0=ephemeral, printed):\n"
      "                       GET /metrics /stats /slowjobs /healthz\n"
      "  --stdio              read frames from stdin, answer on stdout\n"
      "                       (responses in request order)\n"
      "  --in F --out F       like --stdio over a file pair\n"
      "  --stats-json FILE    on exit, write the cgpa.serverstats.v1\n"
      "                       snapshot to FILE\n"
      "  --help               this text\n"
      "\n"
      "Wire protocol: one cgpa.job.v1 JSON document per line in, one\n"
      "cgpa.jobresult.v1 document per job out (docs/service.md). Socket\n"
      "modes run until an op=shutdown frame arrives; queued jobs always\n"
      "drain before exit.\n"
      "\n"
      "Exit codes: 0 success; 1 I/O error; 2 usage.\n");
}

Status parseArgs(int argc, char** argv, Options& options) {
  support::ArgParser args(argc, argv);
  auto text = [&args](std::string& out) -> Status {
    Expected<std::string> v = args.value();
    if (!v.ok())
      return v.status();
    out = *v;
    return Status::success();
  };
  auto u64 = [&args](std::uint64_t& out) -> Status {
    Expected<std::uint64_t> v = args.uintValue();
    if (!v.ok())
      return v.status();
    out = *v;
    return Status::success();
  };
  while (!args.done()) {
    Status status;
    if (args.matchFlag("workers")) {
      Expected<std::int64_t> v = args.intValue();
      if (!v.ok())
        status = v.status();
      else
        options.workers = static_cast<int>(*v);
    } else if (args.matchFlag("cache-entries"))
      status = u64(options.cacheEntries);
    else if (args.matchFlag("max-frame-bytes"))
      status = u64(options.maxFrameBytes);
    else if (args.matchFlag("socket"))
      status = text(options.socketPath);
    else if (args.matchFlag("port")) {
      Expected<std::int64_t> v = args.intValue();
      if (!v.ok())
        status = v.status();
      else
        options.port = static_cast<int>(*v);
    } else if (args.matchFlag("metrics-port")) {
      Expected<std::int64_t> v = args.intValue();
      if (!v.ok())
        status = v.status();
      else
        options.metricsPort = static_cast<int>(*v);
    } else if (args.matchFlag("stdio"))
      options.stdio = true;
    else if (args.matchFlag("in"))
      status = text(options.inFile);
    else if (args.matchFlag("out"))
      status = text(options.outFile);
    else if (args.matchFlag("stats-json"))
      status = text(options.statsJsonOut);
    else if (args.matchFlag("help", "-h"))
      options.help = true;
    else
      return args.unknown();
    if (!status.ok())
      return status;
  }
  if (options.help)
    return Status::success();
  if (options.workers < 1)
    return Status::error(ErrorCode::InvalidArgument,
                         "--workers must be at least 1");
  if (options.inFile.empty() != options.outFile.empty())
    return Status::error(ErrorCode::InvalidArgument,
                         "--in and --out must be used together");
  const bool fileMode = !options.inFile.empty();
  if (static_cast<int>(options.stdio) + static_cast<int>(fileMode) +
          static_cast<int>(!options.socketPath.empty() || options.port >= 0) >
      1)
    return Status::error(
        ErrorCode::InvalidArgument,
        "--stdio, --in/--out, and socket modes are mutually exclusive");
  if (!options.stdio && !fileMode && options.socketPath.empty() &&
      options.port < 0)
    return Status::error(ErrorCode::InvalidArgument,
                         "pick a mode: --socket, --port, --stdio or "
                         "--in/--out (see --help)");
  return Status::success();
}

int writeServerStats(const serve::Server& server, const std::string& path) {
  std::ofstream out(path);
  if (out)
    out << server.serverStatsJson().dump(2) << "\n";
  if (!out) {
    std::fprintf(stderr, "cgpad: cannot write %s\n", path.c_str());
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  // A peer hanging up mid-response must surface as an EPIPE write error on
  // that connection only; the default SIGPIPE action would kill the daemon
  // and drop every other connection's in-flight jobs.
  std::signal(SIGPIPE, SIG_IGN);
  Options options;
  if (Status status = parseArgs(argc, argv, options); !status.ok()) {
    std::fprintf(stderr, "cgpad: %s\n", status.message().c_str());
    return 2;
  }
  if (options.help) {
    printUsage();
    return 0;
  }

  serve::ServerOptions serverOptions;
  serverOptions.workers = options.workers;
  serverOptions.cacheEntries = static_cast<std::size_t>(options.cacheEntries);
  serverOptions.maxFrameBytes = static_cast<std::size_t>(options.maxFrameBytes);
  serve::Server server(serverOptions);

  // The observer is mode-independent: it watches the same registry
  // whether jobs arrive over a socket, stdio, or a file pair.
  if (options.metricsPort >= 0) {
    int boundMetrics = 0;
    if (Status status = server.listenHttp(options.metricsPort, &boundMetrics);
        !status.ok()) {
      std::fprintf(stderr, "cgpad: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("cgpad: metrics on 127.0.0.1:%d\n", boundMetrics);
    std::fflush(stdout);
  }

  int exitCode = 0;
  if (options.stdio || !options.inFile.empty()) {
    int inFd = 0;
    int outFd = 1;
    if (!options.inFile.empty()) {
      inFd = ::open(options.inFile.c_str(), O_RDONLY);
      if (inFd < 0) {
        std::fprintf(stderr, "cgpad: cannot read %s\n",
                     options.inFile.c_str());
        return 1;
      }
      outFd = ::open(options.outFile.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                     0644);
      if (outFd < 0) {
        std::fprintf(stderr, "cgpad: cannot write %s\n",
                     options.outFile.c_str());
        ::close(inFd);
        return 1;
      }
    }
    serve::FrameReader reader = serve::fdFrameReader(
        inFd, static_cast<std::size_t>(options.maxFrameBytes));
    const Status status = server.serveOrdered(
        reader,
        [outFd](const std::string& line) {
          return serve::writeFrame(outFd, line);
        });
    if (!status.ok()) {
      std::fprintf(stderr, "cgpad: %s\n", status.message().c_str());
      exitCode = 1;
    }
    if (inFd != 0)
      ::close(inFd);
    if (outFd != 1)
      ::close(outFd);
  } else {
    if (!options.socketPath.empty()) {
      if (Status status = server.listenUnix(options.socketPath);
          !status.ok()) {
        std::fprintf(stderr, "cgpad: %s\n", status.message().c_str());
        return 1;
      }
      std::printf("cgpad: listening on %s\n", options.socketPath.c_str());
    }
    if (options.port >= 0) {
      int boundPort = 0;
      if (Status status = server.listenTcp(options.port, &boundPort);
          !status.ok()) {
        std::fprintf(stderr, "cgpad: %s\n", status.message().c_str());
        return 1;
      }
      std::printf("cgpad: listening on 127.0.0.1:%d\n", boundPort);
    }
    std::fflush(stdout);
    server.waitForShutdownRequest();
  }

  server.wait();
  if (!options.statsJsonOut.empty())
    exitCode = std::max(exitCode,
                        writeServerStats(server, options.statsJsonOut));
  return exitCode;
}
