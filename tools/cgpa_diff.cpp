// cgpa_diff: differential performance reports over archived runs.
//
//   cgpa_diff base.run.json cand.run.json            # one pair
//   cgpa_diff base.jsonl cand.jsonl                  # two sweep archives
//   cgpa_diff a.run.json b.run.json --out d.json     # write cgpa.rundiff.v1
//   cgpa_diff a.jsonl b.jsonl --threshold 0.05       # tighter CI gate
//
// Inputs are cgpa.run.v1 documents (cgpac --run-dir) or JSONL archives of
// them (cgpa_sweep). With two single records the pair is diffed directly —
// the perturbation-experiment case. With archives, records are joined on
// their configuration key (kernel|flow|workers|fifoDepth|scale|seed|
// backend) and every matched pair is diffed; unmatched records are
// reported, not errors.
//
// Exit codes: 0 no regression; 1 usage / I/O / malformed input;
// 2 at least one pair regressed beyond --threshold (the CI gate).
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/argparse.hpp"
#include "trace/json.hpp"
#include "trace/rundiff.hpp"

namespace {

using namespace cgpa;
using trace::JsonValue;

enum ExitCode : int {
  kExitOk = 0,
  kExitError = 1,
  kExitRegression = 2,
};

struct Options {
  std::vector<std::string> inputs;
  std::string outFile;
  double threshold = 0.10;
  bool quiet = false;
  bool help = false;
};

void usage() {
  std::printf(
      "cgpa_diff — compare archived CGPA runs (cgpa.rundiff.v1)\n"
      "\n"
      "  cgpa_diff BASELINE CANDIDATE [flags]\n"
      "\n"
      "BASELINE / CANDIDATE are cgpa.run.v1 files (cgpac --run-dir) or\n"
      "JSONL archives of them (cgpa_sweep). Two single records diff\n"
      "directly; archives join on kernel|flow|workers|fifoDepth|scale|\n"
      "seed|backend and diff every matched pair.\n"
      "\n"
      "  --threshold T   fractional cycle growth that counts as a\n"
      "                  regression (default 0.10 = 10%%)\n"
      "  --out FILE      write the cgpa.rundiff.v1 report (single pair) or\n"
      "                  a JSONL stream of reports (archives) to FILE\n"
      "  --quiet         suppress the per-pair text reports\n"
      "  --help          this text\n"
      "\n"
      "Exit codes: 0 no regression; 1 usage/I-O/malformed input;\n"
      "2 regression beyond threshold (CI gate).\n");
}

Status parseArgs(int argc, char** argv, Options& options) {
  support::ArgParser args(argc, argv);
  while (!args.done()) {
    Status status;
    if (args.matchFlag("threshold")) {
      Expected<double> v = args.doubleValue();
      if (!v.ok())
        status = v.status();
      else
        options.threshold = *v;
    } else if (args.matchFlag("out")) {
      Expected<std::string> v = args.value();
      if (!v.ok())
        status = v.status();
      else
        options.outFile = *v;
    } else if (args.matchFlag("quiet")) {
      options.quiet = true;
    } else if (args.matchFlag("help", "-h")) {
      options.help = true;
    } else if (!args.isFlag()) {
      options.inputs.push_back(args.positional());
    } else {
      status = args.unknown();
    }
    if (!status.ok())
      return status;
  }
  return Status::success();
}

/// Load one input: a single cgpa.run.v1 document or a JSONL archive of
/// them (one record per line). A file that parses as one JSON document
/// counts as a one-record archive.
Expected<std::vector<JsonValue>> loadRecords(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return Status::error(ErrorCode::IoError, "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::string error;
  if (std::optional<JsonValue> doc = trace::parseJson(text, &error))
    return std::vector<JsonValue>{std::move(*doc)};

  // Not a single document — parse as JSONL, one record per line.
  std::vector<JsonValue> records;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(lines, line)) {
    ++lineNo;
    if (line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    std::optional<JsonValue> doc = trace::parseJson(line, &error);
    if (!doc) {
      return Status::error(ErrorCode::ParseError,
                           path + ":" + std::to_string(lineNo) + ": " +
                               error);
    }
    records.push_back(std::move(*doc));
  }
  if (records.empty())
    return Status::error(ErrorCode::ParseError, path + ": no records");
  return records;
}

/// Configuration join key for archive mode.
std::string recordKey(const JsonValue& record) {
  auto text = [&record](const char* key) -> std::string {
    const JsonValue* v = record.find(key);
    if (v != nullptr && v->isString())
      return v->asString();
    return "?";
  };
  std::string key = text("kernel");
  key += '|';
  key += text("flow");
  const JsonValue* config = record.find("config");
  for (const char* field :
       {"workers", "fifoDepth", "scale", "seed", "backend"}) {
    const JsonValue* v = config != nullptr ? config->find(field) : nullptr;
    key += '|';
    key += v != nullptr ? v->dump(0) : std::string("?");
  }
  return key;
}

} // namespace

int main(int argc, char** argv) {
  Options options;
  if (Status status = parseArgs(argc, argv, options); !status.ok()) {
    std::fprintf(stderr, "cgpa_diff: %s\n", status.toString().c_str());
    usage();
    return kExitError;
  }
  if (options.help) {
    usage();
    return kExitOk;
  }
  if (options.inputs.size() != 2) {
    std::fprintf(stderr, "cgpa_diff: need exactly two inputs, got %zu\n",
                 options.inputs.size());
    usage();
    return kExitError;
  }

  Expected<std::vector<JsonValue>> baseline = loadRecords(options.inputs[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "cgpa_diff: %s\n",
                 baseline.status().toString().c_str());
    return kExitError;
  }
  Expected<std::vector<JsonValue>> candidate =
      loadRecords(options.inputs[1]);
  if (!candidate.ok()) {
    std::fprintf(stderr, "cgpa_diff: %s\n",
                 candidate.status().toString().c_str());
    return kExitError;
  }

  // Pair the records: direct when both sides are single (the perturbation
  // case — configs are allowed to differ), keyed join otherwise.
  std::vector<std::pair<const JsonValue*, const JsonValue*>> pairs;
  std::size_t unmatched = 0;
  const bool single = baseline->size() == 1 && candidate->size() == 1;
  if (single) {
    pairs.emplace_back(&baseline->front(), &candidate->front());
  } else {
    std::map<std::string, const JsonValue*> byKey;
    for (const JsonValue& record : *candidate)
      byKey[recordKey(record)] = &record;
    for (const JsonValue& record : *baseline) {
      auto it = byKey.find(recordKey(record));
      if (it == byKey.end()) {
        ++unmatched;
        continue;
      }
      pairs.emplace_back(&record, it->second);
      byKey.erase(it);
    }
    unmatched += byKey.size();
    if (pairs.empty()) {
      std::fprintf(stderr,
                   "cgpa_diff: no configuration keys match between the two "
                   "archives (%zu + %zu records)\n",
                   baseline->size(), candidate->size());
      return kExitError;
    }
  }

  trace::RunDiffOptions diffOptions;
  diffOptions.threshold = options.threshold;
  std::ofstream out;
  if (!options.outFile.empty()) {
    out.open(options.outFile);
    if (!out) {
      std::fprintf(stderr, "cgpa_diff: cannot write %s\n",
                   options.outFile.c_str());
      return kExitError;
    }
  }

  std::size_t regressions = 0;
  for (const auto& [a, b] : pairs) {
    Expected<JsonValue> diff = trace::buildRunDiff(*a, *b, diffOptions);
    if (!diff.ok()) {
      std::fprintf(stderr, "cgpa_diff: %s\n",
                   diff.status().toString().c_str());
      return kExitError;
    }
    const JsonValue* regressed = diff->find("regressed");
    if (regressed != nullptr && regressed->asBool())
      ++regressions;
    if (!options.quiet)
      std::printf("%s\n", trace::renderRunDiff(*diff).c_str());
    if (out.is_open()) {
      diff->dump(out, single ? 2 : 0);
      out << "\n";
    }
  }
  if (out.is_open()) {
    if (!out) {
      std::fprintf(stderr, "cgpa_diff: cannot write %s\n",
                   options.outFile.c_str());
      return kExitError;
    }
    std::printf("wrote %s (%zu report%s)\n", options.outFile.c_str(),
                pairs.size(), pairs.size() == 1 ? "" : "s");
  }
  if (unmatched != 0)
    std::printf("note: %zu record%s had no counterpart and were skipped\n",
                unmatched, unmatched == 1 ? "" : "s");
  std::printf("%zu pair%s compared, %zu regression%s (threshold %.0f%%)\n",
              pairs.size(), pairs.size() == 1 ? "" : "s", regressions,
              regressions == 1 ? "" : "s", options.threshold * 100.0);
  return regressions != 0 ? kExitRegression : kExitOk;
}
