// Property-style tests for the affine loop-carried disjointness logic in
// the alias analysis — the facts that let CGPA classify array stores like
// membership[i], intermediate[i*width+j], and nodes[i][j] as parallel.
#include "analysis/alias.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"

#include <gtest/gtest.h>

namespace cgpa::analysis {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Instruction;
using ir::Type;

/// Single loop storing `storeType` to A[i*step] with the given gep scale;
/// reports whether the store carries a cross-iteration dependence with
/// itself.
struct StrideCase {
  int step;          // Induction increment.
  std::int64_t scale; // Gep scale (bytes per index unit).
  Type storeType;    // Access width.
  bool expectCarried;
};

class StrideTest : public ::testing::TestWithParam<StrideCase> {};

TEST_P(StrideTest, CarriedDependenceMatchesExpectation) {
  const StrideCase param = GetParam();
  ir::Module module("m");
  ir::Region* region = module.addRegion("A", ir::RegionShape::Array, 8);
  ir::Function* fn = module.addFunction("f", Type::Void);
  ir::Argument* base = fn->addArgument(Type::Ptr, "A");
  base->setRegionId(region->id);
  ir::Argument* n = fn->addArgument(Type::I32, "n");

  auto* entry = fn->addBlock("entry");
  auto* header = fn->addBlock("header");
  auto* body = fn->addBlock("body");
  auto* exit = fn->addBlock("exit");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* i = b.phi(Type::I32, "i");
  b.condBr(b.icmp(CmpPred::SLT, i, n, "c"), body, exit);
  b.setInsertPoint(body);
  auto* addr = b.gep(base, i, param.scale, 0, "addr");
  ir::Value* value = isFloatType(param.storeType)
                         ? static_cast<ir::Value*>(b.f64(1.0))
                         : static_cast<ir::Value*>(
                               module.constInt(param.storeType, 1));
  b.store(value, addr);
  auto* i2 = b.add(i, b.i32(param.step), "i2");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret();
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, body);
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  DominatorTree dom(*fn);
  LoopInfo loops(*fn, dom);
  AliasAnalysis alias(*fn, module, loops);
  const Loop* loop = loops.loops().front().get();
  Instruction* store = body->instruction(1);
  const MemDepResult dep = alias.memoryDep(store, store, loop);
  EXPECT_EQ(dep.mayAliasCarried, param.expectCarried)
      << "step=" << param.step << " scale=" << param.scale
      << " width=" << typeBytes(param.storeType);
}

INSTANTIATE_TEST_SUITE_P(
    Strides, StrideTest,
    ::testing::Values(
        // Stride covers the access: disjoint.
        StrideCase{1, 4, Type::I32, false},
        StrideCase{1, 8, Type::F64, false},
        StrideCase{1, 8, Type::I32, false}, // Padding between elements.
        StrideCase{2, 4, Type::I32, false}, // Step 2: every other element.
        // Stride smaller than access: overlap across iterations.
        StrideCase{1, 4, Type::F64, true},
        StrideCase{1, 2, Type::I32, true},
        // Zero step (no advance): always conflicts.
        StrideCase{0, 4, Type::I32, true}),
    [](const ::testing::TestParamInfo<StrideCase>& info) {
      const StrideCase& c = info.param;
      return "step" + std::to_string(c.step) + "_scale" +
             std::to_string(c.scale) + "_w" +
             std::to_string(typeBytes(c.storeType)) +
             (c.expectCarried ? "_carried" : "_disjoint");
    });

/// The tiled pattern A[i*K + j] with 0 <= j < K (symbolic K): disjoint
/// across i iterations; and its broken variant (bound != coefficient).
TEST(AffineTiled, SymbolicRowPatternDisjoint) {
  ir::Module module("m");
  ir::Region* region = module.addRegion("A", ir::RegionShape::Array, 8);
  ir::Function* fn = module.addFunction("f", Type::Void);
  ir::Argument* base = fn->addArgument(Type::Ptr, "A");
  base->setRegionId(region->id);
  ir::Argument* n = fn->addArgument(Type::I32, "n");
  ir::Argument* k = fn->addArgument(Type::I32, "k");

  auto* entry = fn->addBlock("entry");
  auto* oheader = fn->addBlock("oheader");
  auto* obody = fn->addBlock("obody");
  auto* iheader = fn->addBlock("iheader");
  auto* ibody = fn->addBlock("ibody");
  auto* latch = fn->addBlock("latch");
  auto* exit = fn->addBlock("exit");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.br(oheader);
  b.setInsertPoint(oheader);
  auto* i = b.phi(Type::I32, "i");
  b.condBr(b.icmp(CmpPred::SLT, i, n, "c"), obody, exit);
  b.setInsertPoint(obody);
  auto* rowBase = b.mul(i, k, "row");
  b.br(iheader);
  b.setInsertPoint(iheader);
  auto* j = b.phi(Type::I32, "j");
  b.condBr(b.icmp(CmpPred::SLT, j, k, "jc"), ibody, latch);
  b.setInsertPoint(ibody);
  auto* idx = b.add(rowBase, j, "idx");
  auto* addr = b.gep(base, idx, 8, 0, "addr");
  b.store(b.f64(1.0), addr);
  auto* j2 = b.add(j, b.i32(1), "j2");
  b.br(iheader);
  b.setInsertPoint(latch);
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(oheader);
  b.setInsertPoint(exit);
  b.ret();
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, latch);
  j->addIncoming(b.i32(0), obody);
  j->addIncoming(j2, ibody);
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  DominatorTree dom(*fn);
  LoopInfo loops(*fn, dom);
  AliasAnalysis alias(*fn, module, loops);
  Loop* outer = loops.loopWithHeader(oheader);
  Loop* inner = loops.loopWithHeader(iheader);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  Instruction* store = ibody->instruction(2);

  // Across outer iterations: rows are disjoint (stride i*K covers j < K).
  EXPECT_FALSE(alias.memoryDep(store, store, outer).mayAliasCarried);
  // Across inner iterations: consecutive j, stride 8 covers the 8-byte
  // store.
  EXPECT_FALSE(alias.memoryDep(store, store, inner).mayAliasCarried);
}

TEST(AffineTiled, MismatchedBoundIsConservative) {
  // A[i*K + j] with j < m where m is a DIFFERENT symbol than K: rows may
  // overlap; the analysis must stay conservative.
  ir::Module module("m");
  ir::Region* region = module.addRegion("A", ir::RegionShape::Array, 8);
  ir::Function* fn = module.addFunction("f", Type::Void);
  ir::Argument* base = fn->addArgument(Type::Ptr, "A");
  base->setRegionId(region->id);
  ir::Argument* n = fn->addArgument(Type::I32, "n");
  ir::Argument* k = fn->addArgument(Type::I32, "k");
  ir::Argument* m = fn->addArgument(Type::I32, "m");

  auto* entry = fn->addBlock("entry");
  auto* oheader = fn->addBlock("oheader");
  auto* obody = fn->addBlock("obody");
  auto* iheader = fn->addBlock("iheader");
  auto* ibody = fn->addBlock("ibody");
  auto* latch = fn->addBlock("latch");
  auto* exit = fn->addBlock("exit");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.br(oheader);
  b.setInsertPoint(oheader);
  auto* i = b.phi(Type::I32, "i");
  b.condBr(b.icmp(CmpPred::SLT, i, n, "c"), obody, exit);
  b.setInsertPoint(obody);
  auto* rowBase = b.mul(i, k, "row");
  b.br(iheader);
  b.setInsertPoint(iheader);
  auto* j = b.phi(Type::I32, "j");
  b.condBr(b.icmp(CmpPred::SLT, j, m, "jc"), ibody, latch); // Bound m != k!
  b.setInsertPoint(ibody);
  auto* idx = b.add(rowBase, j, "idx");
  auto* addr = b.gep(base, idx, 8, 0, "addr");
  b.store(b.f64(1.0), addr);
  auto* j2 = b.add(j, b.i32(1), "j2");
  b.br(iheader);
  b.setInsertPoint(latch);
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(oheader);
  b.setInsertPoint(exit);
  b.ret();
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, latch);
  j->addIncoming(b.i32(0), obody);
  j->addIncoming(j2, ibody);
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  DominatorTree dom(*fn);
  LoopInfo loops(*fn, dom);
  AliasAnalysis alias(*fn, module, loops);
  Loop* outer = loops.loopWithHeader(oheader);
  Instruction* store = ibody->instruction(2);
  EXPECT_TRUE(alias.memoryDep(store, store, outer).mayAliasCarried);
}

TEST(AffineTiled, ConstantBoundsUseArithmetic) {
  // A[i*16 + j] with j < 4, 4-byte stores: constant coefficient 16 covers
  // span 3 + window 1 -> disjoint. With j < 32 it must be conservative.
  for (const auto& [innerBound, expectCarried] :
       {std::pair<int, bool>{4, false}, std::pair<int, bool>{32, true}}) {
    ir::Module module("m");
    ir::Region* region = module.addRegion("A", ir::RegionShape::Array, 4);
    ir::Function* fn = module.addFunction("f", Type::Void);
    ir::Argument* base = fn->addArgument(Type::Ptr, "A");
    base->setRegionId(region->id);
    ir::Argument* n = fn->addArgument(Type::I32, "n");

    auto* entry = fn->addBlock("entry");
    auto* oheader = fn->addBlock("oheader");
    auto* obody = fn->addBlock("obody");
    auto* iheader = fn->addBlock("iheader");
    auto* ibody = fn->addBlock("ibody");
    auto* latch = fn->addBlock("latch");
    auto* exit = fn->addBlock("exit");
    IRBuilder b(&module);
    b.setInsertPoint(entry);
    b.br(oheader);
    b.setInsertPoint(oheader);
    auto* i = b.phi(Type::I32, "i");
    b.condBr(b.icmp(CmpPred::SLT, i, n, "c"), obody, exit);
    b.setInsertPoint(obody);
    auto* rowBase = b.mul(i, b.i32(16), "row");
    b.br(iheader);
    b.setInsertPoint(iheader);
    auto* j = b.phi(Type::I32, "j");
    b.condBr(b.icmp(CmpPred::SLT, j, b.i32(innerBound), "jc"), ibody, latch);
    b.setInsertPoint(ibody);
    auto* idx = b.add(rowBase, j, "idx");
    auto* addr = b.gep(base, idx, 4, 0, "addr");
    b.store(b.i32(1), addr);
    auto* j2 = b.add(j, b.i32(1), "j2");
    b.br(iheader);
    b.setInsertPoint(latch);
    auto* i2 = b.add(i, b.i32(1), "i2");
    b.br(oheader);
    b.setInsertPoint(exit);
    b.ret();
    i->addIncoming(b.i32(0), entry);
    i->addIncoming(i2, latch);
    j->addIncoming(b.i32(0), obody);
    j->addIncoming(j2, ibody);
    ASSERT_EQ(ir::verifyFunction(*fn), "");

    DominatorTree dom(*fn);
    LoopInfo loops(*fn, dom);
    AliasAnalysis alias(*fn, module, loops);
    Loop* outer = loops.loopWithHeader(oheader);
    Instruction* store = ibody->instruction(2);
    EXPECT_EQ(alias.memoryDep(store, store, outer).mayAliasCarried,
              expectCarried)
        << "inner bound " << innerBound;
  }
}

TEST(AffineLoads, DataDependentIndexIsConservative) {
  // A[h] where h is data dependent: must be carried.
  ir::Module module("m");
  ir::Region* region = module.addRegion("A", ir::RegionShape::Array, 4);
  ir::Function* fn = module.addFunction("f", Type::Void);
  ir::Argument* base = fn->addArgument(Type::Ptr, "A");
  base->setRegionId(region->id);
  ir::Argument* n = fn->addArgument(Type::I32, "n");

  auto* entry = fn->addBlock("entry");
  auto* header = fn->addBlock("header");
  auto* body = fn->addBlock("body");
  auto* exit = fn->addBlock("exit");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* i = b.phi(Type::I32, "i");
  b.condBr(b.icmp(CmpPred::SLT, i, n, "c"), body, exit);
  b.setInsertPoint(body);
  auto* h = b.bitAnd(b.mul(i, i, "sq"), b.i32(255), "h"); // Nonlinear.
  auto* addr = b.gep(base, h, 4, 0, "addr");
  b.store(b.i32(1), addr);
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret();
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, body);
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  DominatorTree dom(*fn);
  LoopInfo loops(*fn, dom);
  AliasAnalysis alias(*fn, module, loops);
  const Loop* loop = loops.loops().front().get();
  Instruction* store = body->instruction(3);
  EXPECT_TRUE(alias.memoryDep(store, store, loop).mayAliasCarried);
}

} // namespace
} // namespace cgpa::analysis
