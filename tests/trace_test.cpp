// Observability-layer tests: event-stream invariants of the Tracer hook
// protocol (span tiling, push/pop balance, monotonic timestamps),
// bit-identical simulation with tracing enabled, and smoke coverage of
// the three backends (Chrome trace JSON, interval CSV, metrics JSON).
#include "trace/chrome_trace.hpp"
#include "trace/json.hpp"
#include "trace/metrics.hpp"
#include "trace/sampler.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "cgpa/driver.hpp"

namespace cgpa {
namespace {

// Flat event log with enough structure to replay span/transfer
// accounting; every hook records the current trace clock so ordering
// invariants are checkable after the run.
class RecordingTracer : public sim::Tracer {
public:
  enum class Kind : std::uint8_t {
    EngineStart,
    EngineActive,
    EngineStall,
    EngineFinish,
    Fork,
    Join,
    FifoPush,
    FifoPop,
    CacheAccess,
    RunEnd,
  };
  struct Event {
    Kind kind;
    std::uint64_t cycle;
    int a = -1; ///< engineId / channel / bank.
    int b = -1; ///< taskIndex / lane.
    int c = -1; ///< stageIndex / occupiedFlits / hit.
    sim::TraceStall cause = sim::TraceStall::Dep;
  };

  void onEngineStart(int engineId, int taskIndex, int stageIndex) override {
    events.push_back({Kind::EngineStart, now(), engineId, taskIndex,
                      stageIndex, sim::TraceStall::Dep});
  }
  void onEngineActive(int engineId) override {
    events.push_back(
        {Kind::EngineActive, now(), engineId, -1, -1, sim::TraceStall::Dep});
  }
  void onEngineStall(int engineId, sim::TraceStall cause, int channel,
                     int lane) override {
    events.push_back({Kind::EngineStall, now(), engineId, channel, lane,
                      cause});
  }
  void onEngineFinish(int engineId) override {
    events.push_back(
        {Kind::EngineFinish, now(), engineId, -1, -1, sim::TraceStall::Dep});
  }
  void onFork(int parentId, int childId, int taskIndex) override {
    events.push_back(
        {Kind::Fork, now(), parentId, childId, taskIndex,
         sim::TraceStall::Dep});
  }
  void onJoinComplete(int engineId, int loopId) override {
    events.push_back(
        {Kind::Join, now(), engineId, loopId, -1, sim::TraceStall::Dep});
  }
  void onFifoPush(int channel, int lane, int occupiedFlits) override {
    events.push_back({Kind::FifoPush, now(), channel, lane, occupiedFlits,
                      sim::TraceStall::Dep});
  }
  void onFifoPop(int channel, int lane, int occupiedFlits) override {
    events.push_back({Kind::FifoPop, now(), channel, lane, occupiedFlits,
                      sim::TraceStall::Dep});
  }
  void onCacheAccess(int bank, bool hit, bool isWrite) override {
    events.push_back({Kind::CacheAccess, now(), bank, isWrite ? 1 : 0,
                      hit ? 1 : 0, sim::TraceStall::Dep});
  }
  void onRunEnd() override {
    events.push_back({Kind::RunEnd, now(), -1, -1, -1, sim::TraceStall::Dep});
  }

  std::vector<Event> events;
};

struct TracedRun {
  sim::SimResult traced;
  sim::SimResult untraced;
  RecordingTracer recorder;
  driver::CompiledAccelerator accel;
};

TracedRun runKernel(const char* name,
                    driver::Flow flow = driver::Flow::CgpaP1) {
  const kernels::Kernel* kernel = nullptr;
  for (const kernels::Kernel* k : kernels::allKernels())
    if (k->name() == name)
      kernel = k;
  EXPECT_NE(kernel, nullptr) << name;

  TracedRun run;
  run.accel = driver::compileKernel(*kernel, flow, driver::CompileOptions{});
  {
    kernels::Workload work =
        kernel->buildWorkload(kernels::WorkloadConfig{});
    run.traced =
        sim::simulateSystem(run.accel.pipelineModule, *work.memory, work.args,
                            sim::SystemConfig{}, &run.recorder);
  }
  {
    kernels::Workload work =
        kernel->buildWorkload(kernels::WorkloadConfig{});
    run.untraced = sim::simulateSystem(run.accel.pipelineModule, *work.memory,
                                       work.args, sim::SystemConfig{});
  }
  return run;
}

using Kind = RecordingTracer::Kind;

TEST(TraceTest, TracingIsBitIdentical) {
  // Pinned against the same constants as regression_cycles_test: tracing
  // must not change modeled behavior.
  const TracedRun em3d = runKernel("em3d");
  EXPECT_EQ(em3d.traced.cycles, 21360u);
  EXPECT_EQ(em3d.traced.cycles, em3d.untraced.cycles);
  EXPECT_EQ(em3d.traced.returnValue, em3d.untraced.returnValue);
  EXPECT_EQ(em3d.traced.fifoPushes, em3d.untraced.fifoPushes);
  EXPECT_EQ(em3d.traced.fifoPops, em3d.untraced.fifoPops);
  EXPECT_EQ(em3d.traced.cyclesActive, em3d.untraced.cyclesActive);
  EXPECT_EQ(em3d.traced.cyclesStalled, em3d.untraced.cyclesStalled);

  const TracedRun ks = runKernel("ks");
  EXPECT_EQ(ks.traced.cycles, 10444u);
  EXPECT_EQ(ks.traced.cycles, ks.untraced.cycles);
}

TEST(TraceTest, TimestampsAreMonotonic) {
  const TracedRun run = runKernel("em3d");
  ASSERT_FALSE(run.recorder.events.empty());
  std::uint64_t last = 0;
  for (const auto& event : run.recorder.events) {
    EXPECT_GE(event.cycle, last);
    last = event.cycle;
  }
  EXPECT_EQ(run.recorder.events.back().kind, Kind::RunEnd);
}

TEST(TraceTest, SpansTileEngineLiveCycles) {
  // Replay each engine's start/active/stall/finish events into span
  // lengths; active + stalled must equal the engine's live cycles exactly
  // (spans tile [start, finish + 1)), and per-kind totals must match the
  // scheduler's own cyclesActive / cyclesStalled accounting.
  const TracedRun run = runKernel("em3d");
  struct EngineSpans {
    std::uint64_t spanStart = 0;
    bool active = true;
    bool live = false;
    std::uint64_t start = 0;
    std::uint64_t activeTotal = 0;
    std::uint64_t stalledTotal = 0;
    std::uint64_t end = 0;
  };
  std::map<int, EngineSpans> engines;
  for (const auto& event : run.recorder.events) {
    switch (event.kind) {
    case Kind::EngineStart: {
      EngineSpans& rec = engines[event.a];
      EXPECT_FALSE(rec.live);
      rec.live = true;
      rec.active = true;
      rec.start = rec.spanStart = event.cycle;
      break;
    }
    case Kind::EngineActive:
    case Kind::EngineStall: {
      EngineSpans& rec = engines[event.a];
      ASSERT_TRUE(rec.live);
      const std::uint64_t len = event.cycle - rec.spanStart;
      (rec.active ? rec.activeTotal : rec.stalledTotal) += len;
      rec.active = event.kind == Kind::EngineActive;
      rec.spanStart = event.cycle;
      break;
    }
    case Kind::EngineFinish: {
      EngineSpans& rec = engines[event.a];
      ASSERT_TRUE(rec.live);
      const std::uint64_t end = event.cycle + 1;
      (rec.active ? rec.activeTotal : rec.stalledTotal) +=
          end - rec.spanStart;
      rec.live = false;
      rec.end = end;
      break;
    }
    default:
      break;
    }
  }
  ASSERT_EQ(engines.size(), run.traced.engines.size());
  std::uint64_t liveSum = 0;
  for (const auto& [engineId, rec] : engines) {
    EXPECT_FALSE(rec.live) << "engine " << engineId << " never finished";
    const auto& stats =
        run.traced.engines[static_cast<std::size_t>(engineId)].stats;
    // Spans tile [start, finish + 1): active + stalled span lengths equal
    // the engine's live cycles exactly.
    EXPECT_EQ(rec.activeTotal + rec.stalledTotal, rec.end - rec.start)
        << "engine " << engineId;
    EXPECT_EQ(rec.activeTotal + rec.stalledTotal,
              stats.cyclesActive + stats.cyclesStalled)
        << "engine " << engineId;
    // The scheduler-level classification is strictly more pessimistic
    // than the engine's own: a cycle that issued instructions but ended
    // blocked counts active in WorkerStats yet belongs to the stall span
    // (see trace/tracer.hpp). So span-active can only undercount.
    EXPECT_LE(rec.activeTotal, stats.cyclesActive) << "engine " << engineId;
    EXPECT_GE(rec.stalledTotal, stats.cyclesStalled)
        << "engine " << engineId;
    EXPECT_GT(rec.activeTotal, 0u) << "engine " << engineId;
    liveSum += rec.activeTotal + rec.stalledTotal;
  }
  EXPECT_EQ(liveSum, run.traced.cyclesActive + run.traced.cyclesStalled);
}

TEST(TraceTest, FifoEventsBalancePerChannel) {
  const TracedRun run = runKernel("em3d");
  std::map<int, std::uint64_t> pushes;
  std::map<int, std::uint64_t> pops;
  std::map<std::pair<int, int>, int> laneOccupancy;
  std::map<int, int> maxChannelLaneOccupancy;
  for (const auto& event : run.recorder.events) {
    if (event.kind == Kind::FifoPush) {
      ++pushes[event.a];
      laneOccupancy[{event.a, event.b}] = event.c;
      maxChannelLaneOccupancy[event.a] =
          std::max(maxChannelLaneOccupancy[event.a], event.c);
    } else if (event.kind == Kind::FifoPop) {
      ++pops[event.a];
      laneOccupancy[{event.a, event.b}] = event.c;
    }
  }
  std::uint64_t pushTotal = 0;
  std::uint64_t popTotal = 0;
  for (std::size_t c = 0; c < run.traced.channelStats.size(); ++c) {
    const auto& stats = run.traced.channelStats[c];
    EXPECT_EQ(pushes[static_cast<int>(c)], stats.pushes) << "channel " << c;
    EXPECT_EQ(pops[static_cast<int>(c)], stats.pops) << "channel " << c;
    EXPECT_EQ(stats.pushes, stats.pops) << "channel " << c << " not drained";
    EXPECT_EQ(maxChannelLaneOccupancy[static_cast<int>(c)],
              stats.maxOccupancyFlits)
        << "channel " << c;
    pushTotal += stats.pushes;
    popTotal += stats.pops;
  }
  EXPECT_EQ(pushTotal, run.traced.fifoPushes);
  EXPECT_EQ(popTotal, run.traced.fifoPops);
  EXPECT_EQ(run.traced.fifoPushes, run.traced.fifoPops);
  for (const auto& [key, occupancy] : laneOccupancy)
    EXPECT_EQ(occupancy, 0) << "channel " << key.first << " lane "
                            << key.second << " left non-empty";
}

TEST(TraceTest, ForkAndCacheEventsMatchStats) {
  const TracedRun run = runKernel("em3d");
  std::uint64_t forks = 0;
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  for (const auto& event : run.recorder.events) {
    if (event.kind == Kind::Fork)
      ++forks;
    if (event.kind == Kind::CacheAccess) {
      ++accesses;
      hits += event.c;
    }
  }
  EXPECT_EQ(forks, static_cast<std::uint64_t>(run.traced.enginesSpawned));
  EXPECT_EQ(accesses, run.traced.cache.accesses);
  EXPECT_EQ(hits, run.traced.cache.hits);
}

TEST(TraceTest, ChromeTraceParsesAndCoversEngines) {
  const kernels::Kernel* kernel = nullptr;
  for (const kernels::Kernel* k : kernels::allKernels())
    if (k->name() == "em3d")
      kernel = k;
  ASSERT_NE(kernel, nullptr);
  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
  trace::ChromeTraceWriter writer(&accel.pipelineModule);
  const sim::SimResult result =
      sim::simulateSystem(accel.pipelineModule, *work.memory, work.args,
                          sim::SystemConfig{}, &writer);
  EXPECT_GT(writer.numSpans(), 0u);

  std::ostringstream os;
  writer.write(os);
  std::string error;
  const auto doc = trace::parseJson(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const trace::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());

  // One named track per engine (wrapper + workers) and at least one span
  // and one counter sample.
  std::size_t nameEvents = 0;
  std::size_t spans = 0;
  std::size_t counters = 0;
  for (const trace::JsonValue& event : events->items()) {
    const trace::JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->asString() == "M" &&
        event.find("name")->asString() == "thread_name")
      ++nameEvents;
    if (ph->asString() == "X")
      ++spans;
    if (ph->asString() == "C")
      ++counters;
  }
  EXPECT_EQ(nameEvents,
            static_cast<std::size_t>(result.enginesSpawned) + 1);
  EXPECT_EQ(spans, writer.numSpans());
  EXPECT_GT(counters, 0u);
}

TEST(TraceTest, IntervalSamplerRowsAreUniform) {
  const kernels::Kernel* kernel = nullptr;
  for (const kernels::Kernel* k : kernels::allKernels())
    if (k->name() == "ks")
      kernel = k;
  ASSERT_NE(kernel, nullptr);
  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
  trace::IntervalSampler sampler(128, &accel.pipelineModule);
  const sim::SimResult result =
      sim::simulateSystem(accel.pipelineModule, *work.memory, work.args,
                          sim::SystemConfig{}, &sampler);
  // One row per full interval, plus at most one tail row.
  EXPECT_GE(sampler.numRows(), result.cycles / 128);
  EXPECT_LE(sampler.numRows(), result.cycles / 128 + 1);

  std::ostringstream os;
  sampler.writeCsv(os);
  std::istringstream lines(os.str());
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header.rfind("cycle,", 0), 0u);
  const auto columns = std::count(header.begin(), header.end(), ',');
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), columns);
    ++rows;
  }
  EXPECT_EQ(rows, sampler.numRows());
}

TEST(TraceTest, MetricsRegistrySchema) {
  const TracedRun run = runKernel("em3d");
  trace::MetricsRegistry registry;
  registry.addSimResult(run.traced, &run.accel.pipelineModule, 200.0);
  std::string error;
  const auto doc = trace::parseJson(registry.render(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("schema")->asString(), "cgpa.simstats.v1");
  for (const char* key :
       {"backend", "cycles", "returnValue", "enginesSpawned", "timeMicros",
        "cache", "fifo", "stalls", "engineCycles", "energy", "engines",
        "channels", "opCounts"}) {
    EXPECT_NE(doc->find(key), nullptr) << key;
  }
  EXPECT_EQ(doc->find("backend")->asString(),
            std::string(sim::toString(run.traced.backend)));
  EXPECT_TRUE(doc->find("backend")->asString() == "interp" ||
              doc->find("backend")->asString() == "threaded");
  EXPECT_EQ(doc->find("cycles")->asUint(), run.traced.cycles);
  EXPECT_EQ(doc->find("fifo")->find("pushes")->asUint(),
            run.traced.fifoPushes);
  EXPECT_EQ(doc->find("fifo")->find("pops")->asUint(), run.traced.fifoPops);
  EXPECT_EQ(doc->find("engines")->items().size(),
            run.traced.engines.size());
  EXPECT_EQ(doc->find("channels")->items().size(),
            run.traced.channelStats.size());
}

TEST(TraceTest, JsonRoundTrip) {
  trace::JsonValue doc = trace::JsonValue::object();
  doc.set("int", -42);
  doc.set("uint", 18446744073709551615ull);
  doc.set("double", 1.5);
  doc.set("string", "with \"quotes\" and \n newline");
  doc.set("bool", true);
  doc.set("null", trace::JsonValue());
  trace::JsonValue& arr = doc.set("array", trace::JsonValue::array());
  arr.push(1);
  arr.push("two");
  arr.push(trace::JsonValue::object()).set("k", "v");

  for (int indent : {0, 2}) {
    std::string error;
    const auto parsed = trace::parseJson(doc.dump(indent), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->find("int")->asDouble(), -42.0);
    EXPECT_EQ(parsed->find("uint")->asUint(), 18446744073709551615ull);
    EXPECT_EQ(parsed->find("double")->asDouble(), 1.5);
    EXPECT_EQ(parsed->find("string")->asString(),
              "with \"quotes\" and \n newline");
    EXPECT_TRUE(parsed->find("bool")->asBool());
    EXPECT_EQ(parsed->find("array")->items().size(), 3u);
    EXPECT_EQ(parsed->find("array")->items()[2].find("k")->asString(), "v");
  }

  std::string error;
  EXPECT_FALSE(trace::parseJson("{\"unterminated\": ", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(trace::parseJson("[1, 2] trailing", &error).has_value());
}

TEST(TraceTest, JsonUnicodeEscapes) {
  // Simple escapes decode to the named control characters, not
  // placeholders.
  auto parsed = trace::parseJson(R"("a\b\f\n\r\tz")");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->asString(), "a\b\f\n\r\tz");

  // \uXXXX decodes across the UTF-8 widths: 1-byte (U+0041), 2-byte
  // (U+00E9), 3-byte (U+20AC), and a surrogate pair combining to the
  // 4-byte supplementary code point U+1F600.
  parsed = trace::parseJson(R"("\u0041\u00e9\u20AC\uD83D\uDE00")");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->asString(), "A\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80");

  // \u0000 embeds a NUL without truncating the string.
  parsed = trace::parseJson(R"("x\u0000y")");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->asString(), std::string("x\0y", 3));

  // Malformed escapes fail the parse instead of passing through.
  std::string error;
  for (const char* bad : {
           R"("\u12")",          // truncated
           R"("\u12G4")",        // bad hex digit
           R"("\uD83D")",        // lone high surrogate
           R"("\uD83Dx")",       // high surrogate, no \u follow-up
           R"("\uD83D\u0041")", // high surrogate + non-low-surrogate
           R"("\uDE00")",        // lone low surrogate
       }) {
    error.clear();
    EXPECT_FALSE(trace::parseJson(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }

  // Escaped control characters round-trip through the writer: jsonEscape
  // emits \u00XX for them and the parser now restores the original bytes.
  trace::JsonValue doc = trace::JsonValue::object();
  doc.set("s", std::string("bell\x07 back\b feed\f cr\r", 21));
  parsed = trace::parseJson(doc.dump(0));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("s")->asString(),
            std::string("bell\x07 back\b feed\f cr\r", 21));
}

} // namespace
} // namespace cgpa
