#include "interp/eval.hpp"
#include "interp/interpreter.hpp"
#include "interp/memory.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "kernels/kernel.hpp"
#include "opt/passes.hpp"

#include <gtest/gtest.h>

namespace cgpa::opt {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Instruction;
using ir::Opcode;
using ir::Type;

TEST(ConstantFolding, FoldsIntegerChain) {
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::I32);
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  auto* a = b.add(b.i32(2), b.i32(3), "a");     // 5
  auto* c = b.mul(a, b.i32(4), "c");            // 20
  auto* d = b.sub(c, b.i32(1), "d");            // 19
  b.ret(d);
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  const PassStats stats = runScalarOptimizations(*fn);
  EXPECT_GE(stats.foldedConstants, 3);
  EXPECT_GE(stats.deadRemoved, 3);

  // The function reduces to `ret 19`.
  ASSERT_EQ(entry->size(), 1);
  const Instruction* ret = entry->instruction(0);
  EXPECT_EQ(ret->opcode(), Opcode::Ret);
  EXPECT_EQ(ir::asConstant(ret->operand(0))->intValue(), 19);
}

TEST(ConstantFolding, FoldsFloatAndCompare) {
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::I1);
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  auto* x = b.fmul(b.f64(1.5), b.f64(2.0), "x"); // 3.0
  auto* cmp = b.fcmp(CmpPred::OGT, x, b.f64(2.5), "cmp");
  b.ret(cmp);
  runScalarOptimizations(*fn);
  const Instruction* ret = entry->instruction(entry->size() - 1);
  EXPECT_EQ(ir::asConstant(ret->operand(0))->intValue(), 1);
}

TEST(ConstantFolding, LeavesDivByZeroAlone) {
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::I32);
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  auto* d = b.sdiv(b.i32(5), b.i32(0), "d");
  b.ret(d);
  EXPECT_EQ(foldConstants(*fn), 0);
}

TEST(StrengthReduction, MulPowerOfTwoBecomesShift) {
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::I32);
  ir::Argument* x = fn->addArgument(Type::I32, "x");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  auto* m = b.mul(x, b.i32(8), "m");
  b.ret(m);
  EXPECT_EQ(reduceStrength(*fn), 1);
  eliminateDeadCode(*fn);
  ASSERT_EQ(entry->size(), 2);
  const Instruction* shl = entry->instruction(0);
  EXPECT_EQ(shl->opcode(), Opcode::Shl);
  EXPECT_EQ(ir::asConstant(shl->operand(1))->intValue(), 3);

  // Semantics preserved.
  interp::Memory mem(1 << 16);
  interp::Interpreter interp(mem);
  const std::uint64_t args[] = {static_cast<std::uint64_t>(-5)};
  EXPECT_EQ(interp::patternToInt(Type::I32, interp.run(*fn, args).returnValue),
            -40);
}

TEST(StrengthReduction, Identities) {
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::I32);
  ir::Argument* x = fn->addArgument(Type::I32, "x");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  auto* a = b.add(x, b.i32(0), "a");
  auto* m = b.mul(a, b.i32(1), "m");
  auto* o = b.bitOr(m, b.i32(0), "o");
  b.ret(o);
  const PassStats stats = runScalarOptimizations(*fn);
  EXPECT_GE(stats.strengthReduced, 3);
  ASSERT_EQ(entry->size(), 1); // Just `ret x`.
  EXPECT_EQ(entry->instruction(0)->operand(0), x);
}

TEST(Cse, DeduplicatesPureExpressions) {
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::I32);
  ir::Argument* x = fn->addArgument(Type::I32, "x");
  ir::Argument* y = fn->addArgument(Type::I32, "y");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  auto* a = b.add(x, y, "a");
  auto* a2 = b.add(x, y, "a2"); // Duplicate.
  auto* s = b.add(a, a2, "s");
  b.ret(s);
  EXPECT_EQ(eliminateCommonSubexpressions(*fn), 1);
  eliminateDeadCode(*fn);
  EXPECT_EQ(entry->size(), 3); // a, s, ret.
}

TEST(Cse, DoesNotMergeLoads) {
  // Two loads of the same address may see different values (another
  // worker could write between them): never CSE'd.
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::I32);
  ir::Argument* p = fn->addArgument(Type::Ptr, "p");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  auto* l1 = b.load(Type::I32, p, "l1");
  auto* l2 = b.load(Type::I32, p, "l2");
  b.ret(b.add(l1, l2, "s"));
  EXPECT_EQ(eliminateCommonSubexpressions(*fn), 0);
}

TEST(Dce, RemovesDeadButKeepsSideEffects) {
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::Void);
  ir::Argument* p = fn->addArgument(Type::Ptr, "p");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.add(b.i32(1), b.i32(2), "dead");
  b.load(Type::I32, p, "dead.load");
  b.store(b.i32(7), p); // Side effect: must survive.
  b.ret();
  EXPECT_EQ(eliminateDeadCode(*fn), 2);
  EXPECT_EQ(entry->size(), 2); // store + ret.
  EXPECT_EQ(entry->instruction(0)->opcode(), Opcode::Store);
}

TEST(Licm, HoistsInvariantPureOps) {
  // for (i) { t = n * 3; A[i] = t + i; }  -> t hoists to the preheader.
  ir::Module module("m");
  ir::Region* region = module.addRegion("A", ir::RegionShape::Array, 4);
  ir::Function* fn = module.addFunction("f", Type::Void);
  ir::Argument* a = fn->addArgument(Type::Ptr, "A");
  a->setRegionId(region->id);
  ir::Argument* n = fn->addArgument(Type::I32, "n");
  auto* entry = fn->addBlock("entry");
  auto* header = fn->addBlock("header");
  auto* body = fn->addBlock("body");
  auto* exit = fn->addBlock("exit");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* i = b.phi(Type::I32, "i");
  b.condBr(b.icmp(CmpPred::SLT, i, n, "c"), body, exit);
  b.setInsertPoint(body);
  auto* t = b.mul(n, b.i32(3), "t"); // Invariant.
  auto* v = b.add(t, i, "v");        // Not invariant.
  auto* addr = b.gep(a, i, 4, 0, "addr");
  b.store(v, addr);
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret();
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, body);
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  EXPECT_EQ(hoistLoopInvariants(*fn), 1);
  EXPECT_EQ(ir::verifyFunction(*fn), "");
  // t now lives in the entry block (the preheader), before its branch.
  EXPECT_EQ(entry->size(), 2);
  EXPECT_EQ(entry->instruction(0)->opcode(), Opcode::Mul);
  // Nothing else hoists on a second run.
  EXPECT_EQ(hoistLoopInvariants(*fn), 0);
}

TEST(Licm, LeavesLoadsAndConditionalCodeAlone) {
  ir::Module module("m");
  ir::Region* region = module.addRegion("A", ir::RegionShape::Array, 4);
  ir::Function* fn = module.addFunction("f", Type::I32);
  ir::Argument* a = fn->addArgument(Type::Ptr, "A");
  a->setRegionId(region->id);
  ir::Argument* n = fn->addArgument(Type::I32, "n");
  ir::Argument* c = fn->addArgument(Type::I1, "cflag");
  auto* entry = fn->addBlock("entry");
  auto* header = fn->addBlock("header");
  auto* body = fn->addBlock("body");
  auto* thenB = fn->addBlock("then");
  auto* latch = fn->addBlock("latch");
  auto* exit = fn->addBlock("exit");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* i = b.phi(Type::I32, "i");
  b.condBr(b.icmp(CmpPred::SLT, i, n, "more"), body, exit);
  b.setInsertPoint(body);
  auto* invLoad = b.load(Type::I32, a, "inv.load"); // Invariant but a load.
  b.condBr(c, thenB, latch);
  b.setInsertPoint(thenB);
  b.mul(n, n, "cond.mul"); // Invariant but conditional; also dead.
  b.br(latch);
  b.setInsertPoint(latch);
  auto* s = b.add(invLoad, i, "s");
  (void)s;
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret(i);
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, latch);
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  EXPECT_EQ(hoistLoopInvariants(*fn), 0);
}

/// Property: the scalar pipeline never changes kernel semantics.
class OptKernelTest
    : public ::testing::TestWithParam<const kernels::Kernel*> {};

TEST_P(OptKernelTest, OptimizedKernelSemanticsUnchanged) {
  const kernels::Kernel* kernel = GetParam();
  auto module = kernel->buildModule();
  ir::Function* fn = module->findFunction("kernel");
  const int before = fn->instructionCount();
  runScalarOptimizations(*module);
  EXPECT_EQ(ir::verifyModule(*module), "");
  EXPECT_LE(fn->instructionCount(), before);

  kernels::Workload refWork = kernel->buildWorkload(kernels::WorkloadConfig{});
  const std::uint64_t refReturn =
      kernel->runReference(*refWork.memory, refWork.args);
  kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
  interp::Interpreter interp(*work.memory);
  const auto result = interp.run(*fn, work.args);
  EXPECT_EQ(result.returnValue, refReturn);
  EXPECT_EQ(work.memory->raw(), refWork.memory->raw());
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, OptKernelTest, ::testing::ValuesIn(kernels::allKernels()),
    [](const ::testing::TestParamInfo<const kernels::Kernel*>& info) {
      std::string name = info.param->name();
      for (char& c : name)
        if (c == '-')
          c = '_';
      return name;
    });

} // namespace
} // namespace cgpa::opt
