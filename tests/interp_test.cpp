#include "interp/eval.hpp"
#include "interp/interpreter.hpp"
#include "interp/memory.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"

#include <gtest/gtest.h>

namespace cgpa::interp {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Opcode;
using ir::Type;

TEST(Memory, AllocateAligned) {
  Memory memory(1 << 16);
  const std::uint64_t a = memory.allocate(10, 8);
  const std::uint64_t b = memory.allocate(10, 64);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 10);
  EXPECT_GE(a, 64u); // Null guard.
}

TEST(Memory, TypedRoundTrip) {
  Memory memory(1 << 16);
  const std::uint64_t addr = memory.allocate(64);
  memory.writeI32(addr, -12345);
  EXPECT_EQ(memory.readI32(addr), -12345);
  memory.writeI64(addr + 8, -99999999999LL);
  EXPECT_EQ(memory.readI64(addr + 8), -99999999999LL);
  memory.writeF32(addr + 16, 2.5f);
  EXPECT_FLOAT_EQ(memory.readF32(addr + 16), 2.5f);
  memory.writeF64(addr + 24, -3.125);
  EXPECT_DOUBLE_EQ(memory.readF64(addr + 24), -3.125);
  memory.writePtr(addr + 32, addr);
  EXPECT_EQ(memory.readPtr(addr + 32), addr);
}

TEST(Memory, PatternLoadStoreMatchesTyped) {
  Memory memory(1 << 16);
  const std::uint64_t addr = memory.allocate(64);
  memory.store(Type::I32, addr, static_cast<std::uint64_t>(-7));
  EXPECT_EQ(memory.readI32(addr), -7);
  EXPECT_EQ(memory.load(Type::I32, addr),
            static_cast<std::uint64_t>(static_cast<std::int64_t>(-7)));
  memory.store(Type::F64, addr + 8, doubleToPattern(Type::F64, 1.5));
  EXPECT_DOUBLE_EQ(memory.readF64(addr + 8), 1.5);
}

TEST(Eval, IntegerArithmetic) {
  auto bin = [](Opcode op, std::int64_t a, std::int64_t b) {
    return patternToInt(Type::I32,
                        evalBinary(op, Type::I32, CmpPred::EQ,
                                   canonicalize(Type::I32, static_cast<std::uint64_t>(a)),
                                   canonicalize(Type::I32, static_cast<std::uint64_t>(b))));
  };
  EXPECT_EQ(bin(Opcode::Add, 3, 4), 7);
  EXPECT_EQ(bin(Opcode::Sub, 3, 4), -1);
  EXPECT_EQ(bin(Opcode::Mul, -3, 4), -12);
  EXPECT_EQ(bin(Opcode::SDiv, 7, 2), 3);
  EXPECT_EQ(bin(Opcode::SDiv, -7, 2), -3);
  EXPECT_EQ(bin(Opcode::SRem, 7, 3), 1);
  EXPECT_EQ(bin(Opcode::And, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(bin(Opcode::Or, 0b1100, 0b1010), 0b1110);
  EXPECT_EQ(bin(Opcode::Xor, 0b1100, 0b1010), 0b0110);
  EXPECT_EQ(bin(Opcode::Shl, 1, 5), 32);
  EXPECT_EQ(bin(Opcode::AShr, -8, 1), -4);
  // I32 logical shift operates on the 32-bit value.
  EXPECT_EQ(bin(Opcode::LShr, -1, 28), 0xf);
}

TEST(Eval, I32Wraparound) {
  const std::uint64_t big = canonicalize(Type::I32, 0x7fffffffULL);
  const std::uint64_t one = canonicalize(Type::I32, 1);
  EXPECT_EQ(patternToInt(Type::I32,
                         evalBinary(Opcode::Add, Type::I32, CmpPred::EQ, big, one)),
            std::int64_t{-2147483648LL});
}

TEST(Eval, FloatArithmeticAndRounding) {
  const std::uint64_t a = doubleToPattern(Type::F32, 1.1);
  const std::uint64_t b = doubleToPattern(Type::F32, 2.2);
  const std::uint64_t sum = evalBinary(Opcode::FAdd, Type::F32, CmpPred::EQ, a, b);
  EXPECT_FLOAT_EQ(static_cast<float>(patternToDouble(Type::F32, sum)),
                  1.1f + 2.2f);
  const std::uint64_t x = doubleToPattern(Type::F64, 1.5);
  const std::uint64_t y = doubleToPattern(Type::F64, 0.25);
  EXPECT_DOUBLE_EQ(patternToDouble(
                       Type::F64, evalBinary(Opcode::FDiv, Type::F64,
                                             CmpPred::EQ, x, y)),
                   6.0);
}

TEST(Eval, Comparisons) {
  auto icmp = [](CmpPred pred, std::int64_t a, std::int64_t b) {
    return evalBinary(Opcode::ICmp, Type::I64, pred,
                      static_cast<std::uint64_t>(a),
                      static_cast<std::uint64_t>(b)) != 0;
  };
  EXPECT_TRUE(icmp(CmpPred::SLT, -1, 0));
  EXPECT_FALSE(icmp(CmpPred::SGT, -1, 0));
  EXPECT_TRUE(icmp(CmpPred::EQ, 5, 5));
  EXPECT_TRUE(icmp(CmpPred::SGE, 5, 5));
  EXPECT_TRUE(icmp(CmpPred::NE, 5, 6));

  auto fcmp = [](CmpPred pred, double a, double b) {
    return evalBinary(Opcode::FCmp, Type::F64, pred,
                      doubleToPattern(Type::F64, a),
                      doubleToPattern(Type::F64, b)) != 0;
  };
  EXPECT_TRUE(fcmp(CmpPred::OLT, 1.0, 2.0));
  EXPECT_TRUE(fcmp(CmpPred::OGE, 2.0, 2.0));
  EXPECT_FALSE(fcmp(CmpPred::OEQ, 1.0, 2.0));
}

TEST(Eval, Casts) {
  EXPECT_EQ(patternToInt(Type::I64, evalCast(Opcode::SExt, Type::I32, Type::I64,
                                             canonicalize(Type::I32, 0xffffffffULL))),
            -1);
  EXPECT_EQ(evalCast(Opcode::ZExt, Type::I32, Type::I64,
                     canonicalize(Type::I32, 0xffffffffULL)),
            0xffffffffULL);
  EXPECT_DOUBLE_EQ(patternToDouble(
                       Type::F64, evalCast(Opcode::SIToFP, Type::I32,
                                           Type::F64,
                                           canonicalize(Type::I32, static_cast<std::uint64_t>(-3)))),
                   -3.0);
  EXPECT_EQ(patternToInt(Type::I32,
                         evalCast(Opcode::FPToSI, Type::F64, Type::I32,
                                  doubleToPattern(Type::F64, 7.9))),
            7);
}

TEST(Eval, GepAddressing) {
  EXPECT_EQ(evalGep(100, 3, true, 8, 4), 128u);
  EXPECT_EQ(evalGep(100, 0, false, 0, 16), 116u);
  EXPECT_EQ(evalGep(100, 2, true, -4, 0), 92u);
}

TEST(Eval, Intrinsics) {
  const std::uint64_t nine = doubleToPattern(Type::F64, 9.0);
  EXPECT_DOUBLE_EQ(
      patternToDouble(Type::F64, evalIntrinsic(ir::Intrinsic::Sqrt, Type::F64,
                                               &nine, 1)),
      3.0);
  const std::uint64_t neg = doubleToPattern(Type::F64, -2.5);
  EXPECT_DOUBLE_EQ(
      patternToDouble(Type::F64, evalIntrinsic(ir::Intrinsic::FAbs, Type::F64,
                                               &neg, 1)),
      2.5);
  const std::uint64_t pair[2] = {
      canonicalize(Type::I32, static_cast<std::uint64_t>(-4)),
      canonicalize(Type::I32, 9)};
  EXPECT_EQ(patternToInt(Type::I32, evalIntrinsic(ir::Intrinsic::SMin,
                                                  Type::I32, pair, 2)),
            -4);
  EXPECT_EQ(patternToInt(Type::I32, evalIntrinsic(ir::Intrinsic::SMax,
                                                  Type::I32, pair, 2)),
            9);
}

/// sum(n) = 0 + 1 + ... + n-1 via a phi loop.
std::unique_ptr<ir::Module> buildSumModule() {
  auto module = std::make_unique<ir::Module>("m");
  ir::Function* fn = module->addFunction("sum", Type::I32);
  ir::Argument* n = fn->addArgument(Type::I32, "n");
  auto* entry = fn->addBlock("entry");
  auto* header = fn->addBlock("header");
  auto* body = fn->addBlock("body");
  auto* exit = fn->addBlock("exit");
  IRBuilder b(module.get());
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* i = b.phi(Type::I32, "i");
  auto* s = b.phi(Type::I32, "s");
  b.condBr(b.icmp(CmpPred::SLT, i, n, "c"), body, exit);
  b.setInsertPoint(body);
  auto* s2 = b.add(s, i, "s2");
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret(s);
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, body);
  s->addIncoming(b.i32(0), entry);
  s->addIncoming(s2, body);
  return module;
}

TEST(Interpreter, CountingLoop) {
  auto module = buildSumModule();
  ASSERT_EQ(ir::verifyModule(*module), "");
  Memory memory(1 << 16);
  Interpreter interp(memory);
  const std::uint64_t args[] = {10};
  const InterpResult result = interp.run(*module->findFunction("sum"), args);
  EXPECT_EQ(result.returnValue, 45u);
  EXPECT_GT(result.instructionsExecuted, 40u);
}

TEST(Interpreter, LinkedListTraversal) {
  // Build a 5-node list in memory: node = {i32 value, ptr next}.
  Memory memory(1 << 16);
  std::uint64_t head = 0;
  for (int i = 4; i >= 0; --i) {
    const std::uint64_t node = memory.allocate(8, 4);
    memory.writeI32(node, i * 10);
    memory.writePtr(node + 4, head);
    head = node;
  }

  auto module = std::make_unique<ir::Module>("m");
  ir::Function* fn = module->addFunction("walk", Type::I32);
  ir::Argument* headArg = fn->addArgument(Type::Ptr, "head");
  auto* entry = fn->addBlock("entry");
  auto* header = fn->addBlock("header");
  auto* body = fn->addBlock("body");
  auto* exit = fn->addBlock("exit");
  IRBuilder b(module.get());
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* node = b.phi(Type::Ptr, "node");
  auto* acc = b.phi(Type::I32, "acc");
  b.condBr(b.icmp(CmpPred::NE, node, b.nullPtr(), "live"), body, exit);
  b.setInsertPoint(body);
  auto* value = b.load(Type::I32, node, "value");
  auto* acc2 = b.add(acc, value, "acc2");
  auto* nextAddr = b.gep(node, nullptr, 0, 4, "nextAddr");
  auto* next = b.load(Type::Ptr, nextAddr, "next");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret(acc);
  node->addIncoming(headArg, entry);
  node->addIncoming(next, body);
  acc->addIncoming(b.i32(0), entry);
  acc->addIncoming(acc2, body);

  ASSERT_EQ(ir::verifyModule(*module), "");
  Interpreter interp(memory);
  const std::uint64_t args[] = {head};
  EXPECT_EQ(interp.run(*fn, args).returnValue, 100u); // 0+10+20+30+40.
}

TEST(Interpreter, LiveoutRoundTrip) {
  auto module = std::make_unique<ir::Module>("m");
  ir::Function* fn = module->addFunction("lo", Type::I32);
  auto* entry = fn->addBlock("entry");
  IRBuilder b(module.get());
  b.setInsertPoint(entry);
  b.storeLiveout(3, 1, b.i32(77));
  auto* back = b.retrieveLiveout(3, 1, Type::I32, "back");
  b.ret(back);
  Memory memory(1 << 16);
  Interpreter interp(memory);
  LiveoutFile liveouts;
  interp.setLiveoutFile(&liveouts);
  EXPECT_EQ(interp.run(*fn, {}).returnValue, 77u);
  EXPECT_EQ(liveouts.at({3, 1}), 77u);
}

/// Observer counting loads for the profiling path.
class CountingObserver : public ExecObserver {
public:
  void onExec(const ir::Instruction& inst, std::uint64_t memAddr) override {
    ++total;
    if (inst.opcode() == Opcode::Load) {
      ++loads;
      lastAddr = memAddr;
    }
  }
  void onBlockEnter(const ir::BasicBlock& block) override {
    ++blockEntries[&block];
  }
  int total = 0;
  int loads = 0;
  std::uint64_t lastAddr = 0;
  std::map<const ir::BasicBlock*, int> blockEntries;
};

TEST(Interpreter, ObserverSeesExecution) {
  auto module = buildSumModule();
  Memory memory(1 << 16);
  Interpreter interp(memory);
  CountingObserver observer;
  interp.setObserver(&observer);
  const std::uint64_t args[] = {4};
  interp.run(*module->findFunction("sum"), args);
  EXPECT_GT(observer.total, 0);
  const ir::Function* fn = module->findFunction("sum");
  // Header entered n+1 = 5 times, body 4 times.
  EXPECT_EQ(observer.blockEntries.at(fn->findBlock("header")), 5);
  EXPECT_EQ(observer.blockEntries.at(fn->findBlock("body")), 4);
}

} // namespace
} // namespace cgpa::interp
