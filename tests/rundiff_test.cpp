// Run-archive and differential-report tests: cgpa.run.v1 construction
// (trace/run_record.hpp), cgpa.rundiff.v1 attribution (trace/rundiff.hpp),
// and the IntervalSampler golden-CSV property — the sampled time-series is
// bit-identical across repeated runs and across both sim-backend tiers,
// driven over checked-in corpus specs.
#include "trace/run_record.hpp"
#include "trace/rundiff.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "analysis/alias.hpp"
#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/pdg.hpp"
#include "analysis/scc.hpp"
#include "cgpa/driver.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/loopgen.hpp"
#include "ir/printer.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/transform.hpp"
#include "trace/remarks.hpp"
#include "trace/sampler.hpp"

namespace cgpa {
namespace {

/// Compile + simulate one kernel configuration and build its cgpa.run.v1
/// record (the cgpac --run-dir path, inlined for unit testing).
struct ArchivedRun {
  driver::CompiledAccelerator accel;
  sim::SimResult result;
  trace::RemarkCollector remarks;
  trace::JsonValue record;
};

ArchivedRun archiveRun(const char* kernelName, int fifoDepth,
                       int workers = 4) {
  const kernels::Kernel* kernel = kernels::kernelByName(kernelName);
  EXPECT_NE(kernel, nullptr) << kernelName;

  ArchivedRun run;
  driver::CompileOptions compile;
  compile.partition.numWorkers = workers;
  compile.remarks = &run.remarks;
  run.accel = driver::compileKernel(*kernel, driver::Flow::CgpaP1, compile);

  kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
  sim::SystemConfig system;
  system.fifoDepth = fifoDepth;
  run.result = sim::simulateSystem(run.accel.pipelineModule, *work.memory,
                                   work.args, system);

  trace::RunRecordInputs inputs;
  inputs.kernel = kernel->name();
  inputs.flow = "p1";
  inputs.workers = workers;
  inputs.fifoDepth = fifoDepth;
  inputs.scale = 1;
  inputs.seed = 42;
  inputs.correct = true;
  inputs.freqMHz = 200.0;
  inputs.irText = ir::printModule(*run.accel.module);
  inputs.result = &run.result;
  inputs.pipeline = &run.accel.pipelineModule;
  inputs.remarks = &run.remarks;
  run.record = trace::buildRunRecord(inputs);
  return run;
}

TEST(RunRecord, SchemaAndFileName) {
  const ArchivedRun run = archiveRun("em3d", 16);
  const trace::JsonValue& record = run.record;
  ASSERT_TRUE(record.isObject());
  EXPECT_EQ(record.find("schema")->asString(), "cgpa.run.v1");
  EXPECT_EQ(record.find("kernel")->asString(), "em3d");
  EXPECT_EQ(record.find("flow")->asString(), "p1");
  for (const char* key : {"config", "correct", "irHash", "remarks",
                          "health", "stats"}) {
    EXPECT_NE(record.find(key), nullptr) << key;
  }
  const trace::JsonValue* config = record.find("config");
  EXPECT_EQ(config->find("workers")->asUint(), 4u);
  EXPECT_EQ(config->find("fifoDepth")->asUint(), 16u);
  EXPECT_EQ(config->find("backend")->asString(),
            std::string(sim::toString(run.result.backend)));
  // The embedded stats subtree is the full simstats document.
  const trace::JsonValue* stats = record.find("stats");
  EXPECT_EQ(stats->find("schema")->asString(), "cgpa.simstats.v1");
  EXPECT_EQ(stats->find("cycles")->asUint(), run.result.cycles);
  // irHash is the 16-hex-digit FNV fingerprint.
  EXPECT_EQ(record.find("irHash")->asString().size(), 16u);
  // Remarks digest covers every collected remark.
  EXPECT_EQ(record.find("remarks")->find("count")->asUint(),
            run.remarks.size());
  EXPECT_EQ(record.find("remarks")->find("entries")->items().size(),
            run.remarks.size());

  EXPECT_EQ(trace::runRecordFileName(record),
            "em3d-p1-w4-f16-s1-" +
                std::string(sim::toString(run.result.backend)) +
                ".run.json");
}

TEST(RunRecord, HashIsStableAndSensitive) {
  EXPECT_EQ(trace::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(trace::fnv1a64("a"), trace::fnv1a64("b"));
  EXPECT_EQ(trace::hashHex(0), "0000000000000000");
  EXPECT_EQ(trace::hashHex(0xdeadbeefULL), "00000000deadbeef");

  // Same compile twice -> identical irHash and remarks digest.
  const ArchivedRun a = archiveRun("em3d", 16);
  const ArchivedRun b = archiveRun("em3d", 16);
  EXPECT_EQ(a.record.find("irHash")->asString(),
            b.record.find("irHash")->asString());
  EXPECT_EQ(a.record.find("remarks")->find("digest")->asString(),
            b.record.find("remarks")->find("digest")->asString());
}

TEST(RunDiff, IdenticalRunsYieldZeroDeltas) {
  const ArchivedRun a = archiveRun("em3d", 16);
  const ArchivedRun b = archiveRun("em3d", 16);
  Expected<trace::JsonValue> diff = trace::buildRunDiff(a.record, b.record);
  ASSERT_TRUE(diff.ok()) << diff.status().toString();

  EXPECT_EQ(diff->find("schema")->asString(), "cgpa.rundiff.v1");
  EXPECT_FALSE(diff->find("regressed")->asBool());
  EXPECT_FALSE(diff->find("irChanged")->asBool());
  EXPECT_EQ(diff->find("cycles")->find("delta")->asDouble(), 0.0);
  EXPECT_EQ(diff->find("cycles")->find("ratio")->asDouble(), 1.0);
  // All six ledger causes are present, all zero.
  ASSERT_EQ(diff->find("causes")->items().size(), 6u);
  for (const trace::JsonValue& row : diff->find("causes")->items())
    EXPECT_EQ(row.find("delta")->asDouble(), 0.0)
        << row.find("cause")->asString();
  // No channel moved, and the remark sets match (section omitted).
  EXPECT_TRUE(diff->find("channels")->items().empty());
  EXPECT_EQ(diff->find("remarks"), nullptr);
}

TEST(RunDiff, FifoPerturbationNamesChannelAndCause) {
  const ArchivedRun base = archiveRun("em3d", 16);
  const ArchivedRun tight = archiveRun("em3d", 2);
  trace::RunDiffOptions options;
  options.threshold = 0.02;
  Expected<trace::JsonValue> diff =
      trace::buildRunDiff(base.record, tight.record, options);
  ASSERT_TRUE(diff.ok()) << diff.status().toString();

  // Depth 2 starves/backpressures the em3d pipeline: more cycles, and the
  // report must localize the shift to a named channel with a FIFO cause.
  EXPECT_TRUE(diff->find("regressed")->asBool());
  EXPECT_GT(diff->find("cycles")->find("delta")->asDouble(), 0.0);
  EXPECT_FALSE(diff->find("irChanged")->asBool());

  const trace::JsonValue* channels = diff->find("channels");
  ASSERT_FALSE(channels->items().empty());
  const trace::JsonValue& top = channels->items().front();
  EXPECT_NE(top.find("name"), nullptr);
  EXPECT_FALSE(top.find("name")->asString().empty());
  const std::string cause = top.find("cause")->asString();
  EXPECT_TRUE(cause == "stallFifoFull" || cause == "stallFifoEmpty")
      << cause;
  EXPECT_NE(top.find("delta")->asDouble(), 0.0);

  // causes[] is ranked by |delta|.
  const auto& causes = diff->find("causes")->items();
  for (std::size_t i = 1; i < causes.size(); ++i) {
    EXPECT_GE(std::abs(causes[i - 1].find("delta")->asDouble()),
              std::abs(causes[i].find("delta")->asDouble()));
  }

  const std::string text = trace::renderRunDiff(*diff);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find(top.find("name")->asString()), std::string::npos);
}

TEST(RunDiff, RejectsNonRunRecords) {
  trace::JsonValue bogus = trace::JsonValue::object();
  bogus.set("schema", "cgpa.simstats.v1");
  const ArchivedRun good = archiveRun("ks", 16, 2);
  EXPECT_FALSE(trace::buildRunDiff(bogus, good.record).ok());
  EXPECT_FALSE(trace::buildRunDiff(good.record, bogus).ok());
}

/// IntervalSampler golden property over corpus specs × sim backends: the
/// CSV time-series is a pure function of the simulated run, so repeated
/// runs must be bit-identical, and the two execution tiers (which are
/// cycle-accurate to each other) must sample identically too.
class SamplerGoldenTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

std::string sampleCsv(const fuzz::LoopSpec& spec, sim::SimBackend backend,
                      bool* skipped) {
  fuzz::GeneratedLoop loop = fuzz::buildLoop(spec);
  ir::Function* fn = loop.fn;
  analysis::DominatorTree dom(*fn);
  analysis::DominatorTree postDom(*fn, true);
  analysis::LoopInfo loops(*fn, dom);
  analysis::AliasAnalysis alias(*fn, *loop.module, loops);
  analysis::ControlDependence controlDeps(*fn, postDom);
  analysis::Pdg pdg(*fn, *loops.loopWithHeader(fn->findBlock(loop.headerName)),
                    alias, controlDeps);
  analysis::SccGraph sccs(pdg, [](const ir::Instruction*) { return 1.0; });

  pipeline::PartitionOptions options;
  options.numWorkers = 2;
  pipeline::PipelinePlan plan = pipeline::partitionLoop(
      sccs, *loops.loopWithHeader(fn->findBlock(loop.headerName)), options);
  if (!pipeline::checkTransformPreconditions(plan).ok()) {
    *skipped = true;
    return std::string();
  }
  const pipeline::PipelineModule pm =
      pipeline::transformLoop(*fn, plan, /*loopId=*/0);

  fuzz::FuzzWorkload work = fuzz::buildWorkload(spec);
  sim::SystemConfig config;
  config.backend = backend;
  trace::IntervalSampler sampler(/*interval=*/32, &pm);
  sim::simulateSystem(pm, *work.memory, work.args, config, &sampler);
  std::ostringstream os;
  sampler.writeCsv(os);
  return os.str();
}

TEST_P(SamplerGoldenTest, CsvBitIdenticalAcrossRunsAndTiers) {
  const std::string path =
      std::string(CGPA_CORPUS_DIR) + "/" + std::get<0>(GetParam());
  std::string error;
  const auto spec = fuzz::readCorpusSpec(path, &error);
  ASSERT_TRUE(spec.has_value()) << path << ": " << error;
  sim::SimBackend backend = sim::SimBackend::Auto;
  ASSERT_TRUE(sim::parseSimBackend(std::get<1>(GetParam()), backend));

  bool skipped = false;
  const std::string first = sampleCsv(*spec, backend, &skipped);
  if (skipped)
    GTEST_SKIP() << "plan does not meet transform preconditions";
  const std::string second = sampleCsv(*spec, backend, &skipped);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "sampler CSV differs between identical runs";

  // Cross-tier golden: the other tier must produce the same series.
  const sim::SimBackend other = backend == sim::SimBackend::Interp
                                    ? sim::SimBackend::Threaded
                                    : sim::SimBackend::Interp;
  EXPECT_EQ(first, sampleCsv(*spec, other, &skipped))
      << "sampler CSV differs between sim-backend tiers";

  // Structural sanity: header plus uniformly-shaped rows.
  std::istringstream lines(first);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header.rfind("cycle,", 0), 0u);
}

std::string samplerParamName(
    const ::testing::TestParamInfo<SamplerGoldenTest::ParamType>& info) {
  std::string name = std::string(std::get<0>(info.param)) + "_" +
                     std::get<1>(info.param);
  for (char& c : name)
    if (c == '-' || c == '.')
      c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SamplerGoldenTest,
    ::testing::Combine(::testing::Values("gather-cond-store.cgir",
                                         "list-payload-chase.cgir"),
                       ::testing::Values("interp", "threaded")),
    samplerParamName);

} // namespace
} // namespace cgpa
