// Structured-failure coverage: the deadlock forensics report, the cycle
// cap, seeded fault injection, and the Status-returning *Checked entry
// points across parser / partition / schedule. The deadlock recipe relies
// on SystemConfig::testOnlyNoCapacityClamp: a depth-1 FIFO lane under a
// two-flit (f64 on 32-bit lanes) channel can never accept a full value,
// so the first cross-stage push wedges the pipeline deterministically.
#include "fuzz/corpus.hpp"
#include "fuzz/loopgen.hpp"
#include "fuzz/oracle.hpp"

#include "analysis/alias.hpp"
#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/pdg.hpp"
#include "analysis/scc.hpp"
#include "ir/parser.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/transform.hpp"
#include "sim/deadlock.hpp"
#include "sim/system.hpp"
#include "support/status.hpp"
#include "trace/failure_json.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

namespace cgpa {
namespace {

/// The corpus spec behind tests/corpus/float-reduction-multiflit.cgir: a
/// sequential f64 reduction whose cross-stage accumulator channel needs
/// two 32-bit flits per value.
const char* kMultiFlitSpecLine =
    "fuzz-spec v1 data=2 style=counted trip=6 wide=0 retacc=1 "
    "mul=25214903917 add=12345 thresh=2 ops=float_reduction";

struct CompiledLoop {
  fuzz::GeneratedLoop gen;
  std::unique_ptr<analysis::DominatorTree> dom;
  std::unique_ptr<analysis::DominatorTree> postDom;
  std::unique_ptr<analysis::LoopInfo> loops;
  std::unique_ptr<analysis::AliasAnalysis> alias;
  std::unique_ptr<analysis::ControlDependence> cd;
  std::unique_ptr<analysis::Pdg> pdg;
  std::unique_ptr<analysis::SccGraph> sccs;
  pipeline::PipelinePlan plan;
  pipeline::PipelineModule pm;
};

CompiledLoop compileSpec(const fuzz::LoopSpec& spec,
                         const pipeline::PartitionOptions& options = {}) {
  CompiledLoop c;
  c.gen = fuzz::buildLoop(spec);
  ir::Function* fn = c.gen.fn;
  c.dom = std::make_unique<analysis::DominatorTree>(*fn);
  c.postDom = std::make_unique<analysis::DominatorTree>(*fn, true);
  c.loops = std::make_unique<analysis::LoopInfo>(*fn, *c.dom);
  c.alias = std::make_unique<analysis::AliasAnalysis>(*fn, *c.gen.module,
                                                      *c.loops);
  c.cd = std::make_unique<analysis::ControlDependence>(*fn, *c.postDom);
  analysis::Loop* loop = c.loops->topLevelLoops().front();
  c.pdg = std::make_unique<analysis::Pdg>(*fn, *loop, *c.alias, *c.cd);
  c.sccs = std::make_unique<analysis::SccGraph>(
      *c.pdg, [](const ir::Instruction*) { return 1.0; });
  c.plan = pipeline::partitionLoop(*c.sccs, *loop, options);
  c.pm = pipeline::transformLoop(*fn, c.plan, 0);
  return c;
}

fuzz::LoopSpec multiFlitSpec() {
  std::string error;
  const auto spec = fuzz::parseSpecLine(kMultiFlitSpecLine, &error);
  EXPECT_TRUE(spec.has_value()) << error;
  return *spec;
}


/// Deadlock / cycle-cap / fault behavior must be identical under both
/// execution tiers: every sim-facing failure test runs once per backend.
class FailurePathsSim : public ::testing::TestWithParam<sim::SimBackend> {
protected:
  sim::SystemConfig baseConfig() const {
    sim::SystemConfig config;
    config.backend = GetParam();
    return config;
  }
};

// ---------------------------------------------------------------------------
// Deadlock forensics.

TEST_P(FailurePathsSim, MultiFlitDepthOneDeadlocksWithReport) {
  const fuzz::LoopSpec spec = multiFlitSpec();
  CompiledLoop c = compileSpec(spec);
  ASSERT_TRUE(c.plan.pipelined());

  fuzz::FuzzWorkload work = fuzz::buildWorkload(spec);
  sim::SystemConfig config = baseConfig();
  config.fifoDepth = 1;
  config.testOnlyNoCapacityClamp = true;
  const Expected<sim::SimResult> result =
      sim::simulateSystemChecked(c.pm, *work.memory, work.args, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::SimDeadlock);
  EXPECT_NE(result.status().message().find("deadlock"), std::string::npos)
      << result.status().toString();

  const auto* report = result.status().detailAs<sim::DeadlockReport>();
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->kind, sim::DeadlockReport::Kind::Deadlock);
  EXPECT_FALSE(report->engines.empty());
  EXPECT_FALSE(report->lanes.empty());
  EXPECT_FALSE(report->recentEvents.empty());

  // The wedge must be pinned on a multi-flit channel whose lane cannot
  // hold a single value.
  ASSERT_GE(report->wedgedChannel, 0);
  ASSERT_LT(static_cast<std::size_t>(report->wedgedChannel),
            report->channels.size());
  const sim::DeadlockReport::ChannelMeta& wedged =
      report->channels[static_cast<std::size_t>(report->wedgedChannel)];
  EXPECT_GT(wedged.flitsPerValue, 1);
  bool sawUndersizedLane = false;
  for (const sim::DeadlockReport::LaneState& lane : report->lanes)
    if (lane.channel == report->wedgedChannel)
      sawUndersizedLane |= lane.capacityFlits < wedged.flitsPerValue;
  EXPECT_TRUE(sawUndersizedLane);

  // Some engine must be parked on the wedged channel, and the textual
  // forensics must name it.
  bool sawParkedOnWedged = false;
  for (const sim::DeadlockReport::EngineState& engine : report->engines)
    sawParkedOnWedged |= (engine.wait == sim::DeadlockReport::Wait::FifoSpace ||
                          engine.wait == sim::DeadlockReport::Wait::FifoData) &&
                         engine.channel == report->wedgedChannel;
  EXPECT_TRUE(sawParkedOnWedged);
  const std::string text = report->describe();
  EXPECT_NE(text.find("wedged"), std::string::npos) << text;
}

TEST_P(FailurePathsSim, DeadlockReportRendersFailureJson) {
  const fuzz::LoopSpec spec = multiFlitSpec();
  CompiledLoop c = compileSpec(spec);
  fuzz::FuzzWorkload work = fuzz::buildWorkload(spec);
  sim::SystemConfig config = baseConfig();
  config.fifoDepth = 1;
  config.testOnlyNoCapacityClamp = true;
  const Expected<sim::SimResult> result =
      sim::simulateSystemChecked(c.pm, *work.memory, work.args, config);
  ASSERT_FALSE(result.ok());

  const trace::JsonValue doc = trace::failureJson(result.status());
  std::ostringstream out;
  doc.dump(out, 2);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"cgpa.failure.v1\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"code\": \"sim-deadlock\""), std::string::npos);
  EXPECT_NE(json.find("\"deadlock\""), std::string::npos);
  EXPECT_NE(json.find("\"wedgedChannel\""), std::string::npos);
  EXPECT_NE(json.find("\"recentEvents\""), std::string::npos);
}

TEST_P(FailurePathsSim, CycleCapProducesStructuredReport) {
  const fuzz::LoopSpec spec = multiFlitSpec();
  CompiledLoop c = compileSpec(spec);
  fuzz::FuzzWorkload work = fuzz::buildWorkload(spec);
  sim::SystemConfig config = baseConfig();
  config.maxCycles = 3; // Far below any real completion.
  const Expected<sim::SimResult> result =
      sim::simulateSystemChecked(c.pm, *work.memory, work.args, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::CycleCapExceeded);
  const auto* report = result.status().detailAs<sim::DeadlockReport>();
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->kind, sim::DeadlockReport::Kind::CycleCap);
  EXPECT_EQ(report->maxCycles, 3u);
  EXPECT_GE(report->cycle, 3u);
}

// ---------------------------------------------------------------------------
// Fault injection.

TEST_P(FailurePathsSim, FaultedRunMatchesGoldenResults) {
  const fuzz::LoopSpec spec = multiFlitSpec();
  CompiledLoop c = compileSpec(spec);

  fuzz::FuzzWorkload golden = fuzz::buildWorkload(spec);
  sim::SystemConfig config = baseConfig();
  const Expected<sim::SimResult> clean =
      sim::simulateSystemChecked(c.pm, *golden.memory, golden.args, config);
  ASSERT_TRUE(clean.ok()) << clean.status().toString();
  EXPECT_EQ(clean->faultsInjected, 0u);

  fuzz::FuzzWorkload faulted = fuzz::buildWorkload(spec);
  sim::SystemConfig faultConfig = baseConfig();
  faultConfig.faults = sim::FaultPlan::uniform(/*seed=*/7, /*prob=*/0.25);
  const Expected<sim::SimResult> result = sim::simulateSystemChecked(
      c.pm, *faulted.memory, faulted.args, faultConfig);
  ASSERT_TRUE(result.ok()) << result.status().toString();

  // Timing-only perturbations: values and memory must match golden even
  // though faults actually fired (and generally cost cycles).
  EXPECT_GT(result->faultsInjected, 0u);
  EXPECT_EQ(result->returnValue, clean->returnValue);
  EXPECT_EQ(faulted.memory->raw(), golden.memory->raw());
}

TEST_P(FailurePathsSim, FaultStreamIsDeterministic) {
  const fuzz::LoopSpec spec = multiFlitSpec();
  CompiledLoop c = compileSpec(spec);
  sim::SystemConfig config = baseConfig();
  config.faults = sim::FaultPlan::uniform(/*seed=*/11, /*prob=*/0.2);

  std::uint64_t cycles[2];
  std::uint64_t injected[2];
  for (int i = 0; i < 2; ++i) {
    fuzz::FuzzWorkload work = fuzz::buildWorkload(spec);
    const Expected<sim::SimResult> result =
        sim::simulateSystemChecked(c.pm, *work.memory, work.args, config);
    ASSERT_TRUE(result.ok()) << result.status().toString();
    cycles[i] = result->cycles;
    injected[i] = result->faultsInjected;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
  EXPECT_EQ(injected[0], injected[1]);
}

TEST_P(FailurePathsSim, DisabledFaultPlanIsBitIdenticalToLegacyRun) {
  const fuzz::LoopSpec spec = multiFlitSpec();
  CompiledLoop c = compileSpec(spec);
  sim::SystemConfig config = baseConfig();
  ASSERT_FALSE(config.faults.enabled());

  fuzz::FuzzWorkload a = fuzz::buildWorkload(spec);
  const Expected<sim::SimResult> checked =
      sim::simulateSystemChecked(c.pm, *a.memory, a.args, config);
  ASSERT_TRUE(checked.ok());

  fuzz::FuzzWorkload b = fuzz::buildWorkload(spec);
  const sim::SimResult legacy =
      sim::simulateSystem(c.pm, *b.memory, b.args, config);
  EXPECT_EQ(checked->cycles, legacy.cycles);
  EXPECT_EQ(checked->returnValue, legacy.returnValue);
  EXPECT_EQ(checked->fifoPushes, legacy.fifoPushes);
  EXPECT_EQ(checked->fifoPops, legacy.fifoPops);
}

TEST(FailurePaths, OracleFaultLegStillPasses) {
  const fuzz::LoopSpec spec = multiFlitSpec();
  fuzz::OracleOptions options;
  options.workerCounts = {1, 2};
  options.faults = sim::FaultPlan::uniform(/*seed=*/3, /*prob=*/0.1);
  const fuzz::OracleReport report = fuzz::runOracle(spec, options);
  EXPECT_TRUE(report.ok) << report.summary();
}


std::string backendName(const ::testing::TestParamInfo<sim::SimBackend>& info) {
  return sim::toString(info.param);
}

INSTANTIATE_TEST_SUITE_P(Backends, FailurePathsSim,
                         ::testing::Values(sim::SimBackend::Interp,
                                           sim::SimBackend::Threaded),
                         backendName);

// ---------------------------------------------------------------------------
// Status propagation through the front/middle end.

TEST(FailurePaths, ParseFailureComesBackAsStatus) {
  const Expected<std::unique_ptr<ir::Module>> parsed =
      ir::parseModuleChecked("module \"broken\"\nfunc @k( {");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::ParseError);
  EXPECT_FALSE(parsed.status().message().empty());
}

TEST(FailurePaths, PartitionOptionsAreValidated) {
  pipeline::PartitionOptions options;
  options.numWorkers = 3;
  const Status status = pipeline::checkPartitionOptions(options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::PartitionError);
  EXPECT_NE(status.message().find('3'), std::string::npos)
      << status.message();
  options.numWorkers = 4;
  EXPECT_TRUE(pipeline::checkPartitionOptions(options).ok());
}

} // namespace
} // namespace cgpa
