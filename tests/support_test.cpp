#include "support/argparse.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/strings.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

namespace cgpa {
namespace {

/// Build an ArgParser over a literal argv (argv[0] is the program name).
template <std::size_t N>
support::ArgParser makeParser(const char* (&argv)[N]) {
  return support::ArgParser(static_cast<int>(N),
                            const_cast<char**>(argv));
}

TEST(ArgParser, SpaceAndEqualsFormsBothWork) {
  const char* argv[] = {"tool", "--kernel", "em3d", "--workers=8"};
  support::ArgParser args = makeParser(argv);

  ASSERT_TRUE(args.matchFlag("kernel"));
  Expected<std::string> kernel = args.value();
  ASSERT_TRUE(kernel.ok());
  EXPECT_EQ(*kernel, "em3d");

  ASSERT_TRUE(args.matchFlag("workers"));
  Expected<std::int64_t> workers = args.intValue();
  ASSERT_TRUE(workers.ok());
  EXPECT_EQ(*workers, 8);
  EXPECT_TRUE(args.done());
}

TEST(ArgParser, MissingValueIsInvalidArgument) {
  const char* argv[] = {"tool", "--kernel"};
  support::ArgParser args = makeParser(argv);
  ASSERT_TRUE(args.matchFlag("kernel"));
  const Expected<std::string> v = args.value();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(v.status().message().find("--kernel"), std::string::npos);
}

TEST(ArgParser, MalformedNumbersAreRejected) {
  const char* argv[] = {"tool", "--count=12x", "--seed=-3", "--rate=z"};
  support::ArgParser args = makeParser(argv);

  ASSERT_TRUE(args.matchFlag("count"));
  EXPECT_FALSE(args.intValue().ok());
  ASSERT_TRUE(args.matchFlag("seed"));
  const Expected<std::uint64_t> seed = args.uintValue();
  ASSERT_FALSE(seed.ok());
  EXPECT_EQ(seed.status().code(), ErrorCode::InvalidArgument);
  ASSERT_TRUE(args.matchFlag("rate"));
  EXPECT_FALSE(args.doubleValue().ok());
}

TEST(ArgParser, NegativeIntAndDoubleParse) {
  const char* argv[] = {"tool", "--offset=-12", "--rate", "0.25"};
  support::ArgParser args = makeParser(argv);
  ASSERT_TRUE(args.matchFlag("offset"));
  Expected<std::int64_t> offset = args.intValue();
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(*offset, -12);
  ASSERT_TRUE(args.matchFlag("rate"));
  Expected<double> rate = args.doubleValue();
  ASSERT_TRUE(rate.ok());
  EXPECT_DOUBLE_EQ(*rate, 0.25);
}

TEST(ArgParser, UnknownFlagNamesTheToken) {
  const char* argv[] = {"tool", "--nope"};
  support::ArgParser args = makeParser(argv);
  EXPECT_FALSE(args.matchFlag("kernel"));
  EXPECT_TRUE(args.isFlag());
  const Status status = args.unknown();
  EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
  EXPECT_NE(status.message().find("--nope"), std::string::npos);
}

TEST(ArgParser, PositionalsAndFlagsInterleave) {
  const char* argv[] = {"tool", "replay", "a.cgir", "--verbose", "b.cgir"};
  support::ArgParser args = makeParser(argv);
  EXPECT_FALSE(args.isFlag());
  EXPECT_EQ(args.positional(), "replay");
  std::vector<std::string> files;
  bool verbose = false;
  while (!args.done()) {
    if (args.matchFlag("verbose"))
      verbose = true;
    else
      files.push_back(args.positional());
  }
  EXPECT_TRUE(verbose);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "a.cgir");
  EXPECT_EQ(files[1], "b.cgir");
}

TEST(ArgParser, ShortAliasMatches) {
  const char* argv[] = {"tool", "-h"};
  support::ArgParser args = makeParser(argv);
  EXPECT_FALSE(args.matchFlag("kernel"));
  EXPECT_TRUE(args.matchFlag("help", "-h"));
  EXPECT_TRUE(args.done());
}

TEST(ArgParser, PrefixFlagsDoNotMatch) {
  // "--trace-csv" must not be consumed by matchFlag("trace").
  const char* argv[] = {"tool", "--trace-csv=x.csv"};
  support::ArgParser args = makeParser(argv);
  EXPECT_FALSE(args.matchFlag("trace"));
  ASSERT_TRUE(args.matchFlag("trace-csv"));
  Expected<std::string> v = args.value();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "x.csv");
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i)
    EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t value = rng.nextInRange(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 7u); // All values hit for a healthy generator.
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.nextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = splitString("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trimString("  hi \t"), "hi");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString("x"), "x");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(startsWith("module foo", "module"));
  EXPECT_FALSE(startsWith("mod", "module"));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(2.0, 0), "2");
}

TEST(Strings, Padding) {
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("abcdef", 3), "abcdef");
}

namespace {
struct TestDetail : StatusDetail {
  int payload;
  explicit TestDetail(int payload) : payload(payload) {}
  std::string describe() const override { return "test-detail"; }
};
} // namespace

TEST(Status, SuccessAndError) {
  const Status ok = Status::success();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), ErrorCode::Ok);
  EXPECT_EQ(ok.toString(), "ok");

  const Status err = Status::error(ErrorCode::VerifyError, "bad module");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::VerifyError);
  EXPECT_EQ(err.message(), "bad module");
  EXPECT_EQ(err.toString(), "verify-error: bad module");
}

TEST(Status, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
  EXPECT_STREQ(errorCodeName(ErrorCode::ParseError), "parse-error");
  EXPECT_STREQ(errorCodeName(ErrorCode::SimDeadlock), "sim-deadlock");
  EXPECT_STREQ(errorCodeName(ErrorCode::CycleCapExceeded),
               "cycle-cap-exceeded");
}

TEST(Status, DetailDowncast) {
  Status status = Status::error(ErrorCode::SimDeadlock, "wedged")
                      .withDetail(std::make_shared<TestDetail>(42));
  const TestDetail* detail = status.detailAs<TestDetail>();
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->payload, 42);
  EXPECT_EQ(status.detail()->describe(), "test-detail");

  const Status bare = Status::error(ErrorCode::IoError, "no file");
  EXPECT_EQ(bare.detailAs<TestDetail>(), nullptr);
}

TEST(Expected, ValueAndStatusPaths) {
  const Expected<int> good = 7;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  EXPECT_TRUE(good.status().ok());

  const Expected<int> bad = Status::error(ErrorCode::ScheduleError, "stuck");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::ScheduleError);
}

} // namespace
} // namespace cgpa
