#include "analysis/alias.hpp"
#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/pdg.hpp"
#include "analysis/profile.hpp"
#include "analysis/scc.hpp"
#include "interp/memory.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"

#include <gtest/gtest.h>

namespace cgpa::analysis {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Instruction;
using ir::Opcode;
using ir::Type;

/// Shared fixture IR:
///
/// em3d-like list update (no inner loop):
///   for (n = head; n != null; n = n->next)   // node: {f64 value, ptr next}
///     n->value = n->value * 0.9;
struct ListKernel {
  std::unique_ptr<ir::Module> module;
  ir::Function* fn = nullptr;
  Instruction* nodePhi = nullptr;
  Instruction* valueLoad = nullptr;
  Instruction* valueStore = nullptr;
  Instruction* nextLoad = nullptr;
  Instruction* exitBranch = nullptr;
};

ListKernel buildListKernel() {
  ListKernel k;
  k.module = std::make_unique<ir::Module>("listk");
  ir::Region* region =
      k.module->addRegion("nodes", ir::RegionShape::AcyclicList, 16);
  region->nextOffset = 8;

  k.fn = k.module->addFunction("kernel", Type::Void);
  ir::Argument* head = k.fn->addArgument(Type::Ptr, "head");
  head->setRegionId(region->id);

  auto* entry = k.fn->addBlock("entry");
  auto* header = k.fn->addBlock("header");
  auto* body = k.fn->addBlock("body");
  auto* exit = k.fn->addBlock("exit");
  IRBuilder b(k.module.get());
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  k.nodePhi = b.phi(Type::Ptr, "n");
  b.condBr(b.icmp(CmpPred::NE, k.nodePhi, b.nullPtr(), "live"), body, exit);
  k.exitBranch = header->terminator();
  b.setInsertPoint(body);
  k.valueLoad =
      ir::asInstruction(b.load(Type::F64, k.nodePhi, "value"));
  auto* scaled = b.fmul(k.valueLoad, b.f64(0.9), "scaled");
  b.store(scaled, k.nodePhi);
  k.valueStore = body->instruction(body->size() - 1);
  auto* nextAddr = b.gep(k.nodePhi, nullptr, 0, 8, "nextAddr");
  k.nextLoad = ir::asInstruction(b.load(Type::Ptr, nextAddr, "next"));
  b.br(header);
  b.setInsertPoint(exit);
  b.ret();
  k.nodePhi->addIncoming(head, entry);
  k.nodePhi->addIncoming(k.nextLoad, body);
  EXPECT_EQ(ir::verifyModule(*k.module), "");
  return k;
}

TEST(Dominators, ForwardDominance) {
  auto k = buildListKernel();
  DominatorTree dom(*k.fn);
  auto* entry = k.fn->findBlock("entry");
  auto* header = k.fn->findBlock("header");
  auto* body = k.fn->findBlock("body");
  auto* exit = k.fn->findBlock("exit");
  EXPECT_TRUE(dom.dominates(entry, exit));
  EXPECT_TRUE(dom.dominates(header, body));
  EXPECT_TRUE(dom.dominates(header, exit));
  EXPECT_FALSE(dom.dominates(body, exit));
  EXPECT_TRUE(dom.dominates(header, header));
  EXPECT_EQ(dom.idom(header), entry);
  EXPECT_EQ(dom.idom(body), header);
  EXPECT_EQ(dom.idom(entry), nullptr);
}

TEST(Dominators, PostDominance) {
  auto k = buildListKernel();
  DominatorTree postDom(*k.fn, /*postDom=*/true);
  auto* entry = k.fn->findBlock("entry");
  auto* header = k.fn->findBlock("header");
  auto* body = k.fn->findBlock("body");
  auto* exit = k.fn->findBlock("exit");
  EXPECT_TRUE(postDom.dominates(exit, entry));
  EXPECT_TRUE(postDom.dominates(header, body));
  EXPECT_TRUE(postDom.dominates(exit, body));
  EXPECT_FALSE(postDom.dominates(body, header));
}

TEST(Loops, DetectsListLoop) {
  auto k = buildListKernel();
  DominatorTree dom(*k.fn);
  LoopInfo loops(*k.fn, dom);
  ASSERT_EQ(loops.loops().size(), 1u);
  const Loop* loop = loops.loops().front().get();
  EXPECT_EQ(loop->header, k.fn->findBlock("header"));
  EXPECT_EQ(loop->blocks.size(), 2u);
  EXPECT_EQ(loop->preheader, k.fn->findBlock("entry"));
  ASSERT_EQ(loop->latches.size(), 1u);
  EXPECT_EQ(loop->latches[0], k.fn->findBlock("body"));
  ASSERT_EQ(loop->exitingBranches.size(), 1u);
  EXPECT_EQ(loop->exitingBranches[0], k.exitBranch);
  EXPECT_EQ(loop->depth, 1);
  EXPECT_TRUE(loop->contains(k.valueLoad));
}

/// Nested counting loops with an induction variable and a bound.
TEST(Loops, InductionVariables) {
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::Void);
  ir::Argument* n = fn->addArgument(Type::I32, "n");
  auto* entry = fn->addBlock("entry");
  auto* header = fn->addBlock("header");
  auto* body = fn->addBlock("body");
  auto* exit = fn->addBlock("exit");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* i = b.phi(Type::I32, "i");
  b.condBr(b.icmp(CmpPred::SLT, i, n, "c"), body, exit);
  b.setInsertPoint(body);
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret();
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, body);
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  DominatorTree dom(*fn);
  LoopInfo loops(*fn, dom);
  ASSERT_EQ(loops.loops().size(), 1u);
  const Loop* loop = loops.loops().front().get();
  ASSERT_EQ(loop->inductionVars.size(), 1u);
  const InductionVar& iv = loop->inductionVars[0];
  EXPECT_EQ(iv.phi, i);
  EXPECT_EQ(iv.step, 1);
  EXPECT_TRUE(iv.isCanonical());
  EXPECT_EQ(iv.bound, n);
  EXPECT_EQ(iv.boundPred, CmpPred::SLT);
  EXPECT_FALSE(iv.boundOnUpdate);
}

TEST(ControlDeps, DiamondStructure) {
  // entry -> (then | else) -> join; then/else control dependent on entry's
  // branch, join not.
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::Void);
  ir::Argument* c = fn->addArgument(Type::I1, "c");
  auto* entry = fn->addBlock("entry");
  auto* thenB = fn->addBlock("then");
  auto* elseB = fn->addBlock("else");
  auto* join = fn->addBlock("join");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.condBr(c, thenB, elseB);
  b.setInsertPoint(thenB);
  b.br(join);
  b.setInsertPoint(elseB);
  b.br(join);
  b.setInsertPoint(join);
  b.ret();
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  DominatorTree postDom(*fn, true);
  ControlDependence cd(*fn, postDom);
  ASSERT_EQ(cd.controllers(thenB).size(), 1u);
  EXPECT_EQ(cd.controllers(thenB)[0], entry->terminator());
  ASSERT_EQ(cd.controllers(elseB).size(), 1u);
  EXPECT_TRUE(cd.controllers(join).empty());
  EXPECT_TRUE(cd.controllers(entry).empty());
}

TEST(ControlDeps, LoopBodyDependsOnExitBranch) {
  auto k = buildListKernel();
  DominatorTree postDom(*k.fn, true);
  ControlDependence cd(*k.fn, postDom);
  auto* body = k.fn->findBlock("body");
  auto* header = k.fn->findBlock("header");
  const auto& bodyCtl = cd.controllers(body);
  ASSERT_EQ(bodyCtl.size(), 1u);
  EXPECT_EQ(bodyCtl[0], k.exitBranch);
  // The header of a loop is control dependent on its own exit branch.
  const auto& headerCtl = cd.controllers(header);
  ASSERT_EQ(headerCtl.size(), 1u);
  EXPECT_EQ(headerCtl[0], k.exitBranch);
}

TEST(Alias, ListWalkClassification) {
  auto k = buildListKernel();
  DominatorTree dom(*k.fn);
  LoopInfo loops(*k.fn, dom);
  AliasAnalysis alias(*k.fn, *k.module, loops);
  const Loop* loop = loops.loops().front().get();

  const PtrClass& phiCls = alias.classify(k.nodePhi);
  EXPECT_EQ(phiCls.kind, PtrClass::Kind::Node);
  EXPECT_EQ(phiCls.region, 0);
  EXPECT_EQ(phiCls.base, k.nodePhi);
  EXPECT_TRUE(alias.isIterationDistinct(k.nodePhi, loop));

  // value access at offset 0, next access at offset 8.
  const PtrClass valuePath = alias.accessPath(k.valueLoad);
  EXPECT_EQ(valuePath.offset, 0);
  const PtrClass nextPath = alias.accessPath(k.nextLoad);
  EXPECT_EQ(nextPath.offset, 8);
}

TEST(Alias, ListWalkMemoryDeps) {
  auto k = buildListKernel();
  DominatorTree dom(*k.fn);
  LoopInfo loops(*k.fn, dom);
  AliasAnalysis alias(*k.fn, *k.module, loops);
  const Loop* loop = loops.loops().front().get();

  // value store vs value load: same node, same field -> intra dep only
  // (the traversal is iteration-distinct, so no carried dep).
  const MemDepResult valDep = alias.memoryDep(k.valueStore, k.valueLoad, loop);
  EXPECT_TRUE(valDep.mayAliasIntra);
  EXPECT_FALSE(valDep.mayAliasCarried);

  // value store vs next load: disjoint fields -> no dep at all.
  const MemDepResult nextDep = alias.memoryDep(k.valueStore, k.nextLoad, loop);
  EXPECT_FALSE(nextDep.mayAliasIntra);
  EXPECT_FALSE(nextDep.mayAliasCarried);
}

/// Array kernel: A[i] += B[i] plus an irregular write C[h] = i, where h is
/// a data-dependent hash. A accesses are carried-disjoint; C is not.
struct ArrayKernel {
  std::unique_ptr<ir::Module> module;
  ir::Function* fn = nullptr;
  Instruction* aLoad = nullptr;
  Instruction* aStore = nullptr;
  Instruction* bLoad = nullptr;
  Instruction* cStore = nullptr;
  Instruction* cLoad = nullptr;
};

ArrayKernel buildArrayKernel() {
  ArrayKernel k;
  k.module = std::make_unique<ir::Module>("arr");
  ir::Region* ra = k.module->addRegion("A", ir::RegionShape::Array, 4);
  ir::Region* rb = k.module->addRegion("B", ir::RegionShape::Array, 4);
  rb->readOnly = true;
  ir::Region* rc = k.module->addRegion("C", ir::RegionShape::Array, 4);

  k.fn = k.module->addFunction("kernel", Type::Void);
  ir::Argument* a = k.fn->addArgument(Type::Ptr, "A");
  a->setRegionId(ra->id);
  ir::Argument* bArg = k.fn->addArgument(Type::Ptr, "B");
  bArg->setRegionId(rb->id);
  ir::Argument* cArg = k.fn->addArgument(Type::Ptr, "C");
  cArg->setRegionId(rc->id);
  ir::Argument* n = k.fn->addArgument(Type::I32, "n");

  auto* entry = k.fn->addBlock("entry");
  auto* header = k.fn->addBlock("header");
  auto* body = k.fn->addBlock("body");
  auto* exit = k.fn->addBlock("exit");
  IRBuilder b(k.module.get());
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* i = b.phi(Type::I32, "i");
  b.condBr(b.icmp(CmpPred::SLT, i, n, "c"), body, exit);
  b.setInsertPoint(body);
  auto* aAddr = b.gep(a, i, 4, 0, "aAddr");
  k.aLoad = ir::asInstruction(b.load(Type::I32, aAddr, "av"));
  auto* bAddr = b.gep(bArg, i, 4, 0, "bAddr");
  k.bLoad = ir::asInstruction(b.load(Type::I32, bAddr, "bv"));
  auto* sum = b.add(k.aLoad, k.bLoad, "sum");
  b.store(sum, aAddr);
  k.aStore = body->instruction(body->size() - 1);
  // Irregular write: h = sum & 255.
  auto* h = b.bitAnd(sum, b.i32(255), "h");
  auto* cAddr = b.gep(cArg, h, 4, 0, "cAddr");
  k.cLoad = ir::asInstruction(b.load(Type::I32, cAddr, "cv"));
  auto* cv2 = b.add(k.cLoad, b.i32(1), "cv2");
  b.store(cv2, cAddr);
  k.cStore = body->instruction(body->size() - 1);
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret();
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, body);
  EXPECT_EQ(ir::verifyModule(*k.module), "");
  return k;
}

TEST(Alias, AffineArrayDeps) {
  auto k = buildArrayKernel();
  DominatorTree dom(*k.fn);
  LoopInfo loops(*k.fn, dom);
  AliasAnalysis alias(*k.fn, *k.module, loops);
  const Loop* loop = loops.loops().front().get();

  // A[i] store vs A[i] load: intra (same address), not carried (stride 4
  // covers the 4-byte window).
  const MemDepResult aDep = alias.memoryDep(k.aStore, k.aLoad, loop);
  EXPECT_TRUE(aDep.mayAliasIntra);
  EXPECT_FALSE(aDep.mayAliasCarried);

  // A store vs B load: distinct regions.
  const MemDepResult abDep = alias.memoryDep(k.aStore, k.bLoad, loop);
  EXPECT_FALSE(abDep.mayAliasIntra);
  EXPECT_FALSE(abDep.mayAliasCarried);

  // C[h] store vs C[h] load: same data-dependent index -> intra yes; and
  // carried (h is not an induction expression).
  const MemDepResult cDep = alias.memoryDep(k.cStore, k.cLoad, loop);
  EXPECT_TRUE(cDep.mayAliasIntra);
  EXPECT_TRUE(cDep.mayAliasCarried);

  // A store vs C store: same... different regions -> no dep.
  const MemDepResult acDep = alias.memoryDep(k.aStore, k.cStore, loop);
  EXPECT_FALSE(acDep.mayAliasIntra);
}

TEST(Pdg, ListKernelEdges) {
  auto k = buildListKernel();
  DominatorTree dom(*k.fn);
  DominatorTree postDom(*k.fn, true);
  LoopInfo loops(*k.fn, dom);
  AliasAnalysis alias(*k.fn, *k.module, loops);
  ControlDependence cd(*k.fn, postDom);
  const Loop* loop = loops.loops().front().get();
  Pdg pdg(*k.fn, *loop, alias, cd);

  EXPECT_EQ(pdg.numNodes(), k.fn->findBlock("header")->size() +
                                k.fn->findBlock("body")->size());

  // Carried register edge: nextLoad -> nodePhi.
  bool carriedReg = false;
  bool carriedCtl = false;
  for (const PdgEdge& e : pdg.edges()) {
    if (e.kind == PdgEdge::Kind::Register && e.loopCarried &&
        pdg.node(e.from) == k.nextLoad && pdg.node(e.to) == k.nodePhi)
      carriedReg = true;
    if (e.kind == PdgEdge::Kind::Control && e.loopCarried &&
        pdg.node(e.from) == k.exitBranch && pdg.node(e.to) == k.valueStore)
      carriedCtl = true;
  }
  EXPECT_TRUE(carriedReg);
  EXPECT_TRUE(carriedCtl);

  // No carried memory edge between value store and value load.
  for (const PdgEdge& e : pdg.edges())
    if (e.kind == PdgEdge::Kind::Memory && e.loopCarried)
      FAIL() << "unexpected carried memory edge";
}

TEST(Pdg, ExecutionOrderWithinIteration) {
  auto k = buildListKernel();
  DominatorTree dom(*k.fn);
  DominatorTree postDom(*k.fn, true);
  LoopInfo loops(*k.fn, dom);
  AliasAnalysis alias(*k.fn, *k.module, loops);
  ControlDependence cd(*k.fn, postDom);
  Pdg pdg(*k.fn, *loops.loops().front(), alias, cd);
  EXPECT_TRUE(pdg.mayExecuteBefore(k.valueLoad, k.valueStore));
  EXPECT_FALSE(pdg.mayExecuteBefore(k.valueStore, k.valueLoad));
  // Header phi executes before body instructions.
  EXPECT_TRUE(pdg.mayExecuteBefore(k.nodePhi, k.valueLoad));
}

TEST(Scc, ListKernelClassification) {
  auto k = buildListKernel();
  DominatorTree dom(*k.fn);
  DominatorTree postDom(*k.fn, true);
  LoopInfo loops(*k.fn, dom);
  AliasAnalysis alias(*k.fn, *k.module, loops);
  ControlDependence cd(*k.fn, postDom);
  Pdg pdg(*k.fn, *loops.loops().front(), alias, cd);
  SccGraph sccs(pdg, [](const Instruction*) { return 1.0; });

  // Traversal SCC: phi + cmp + condbr + next load -> replicable, heavy.
  const int traversal = sccs.sccOf(k.nodePhi);
  EXPECT_EQ(sccs.sccOf(k.nextLoad), traversal);
  EXPECT_EQ(sccs.sccOf(k.exitBranch), traversal);
  EXPECT_EQ(sccs.sccs()[static_cast<std::size_t>(traversal)].cls,
            SccClass::Replicable);
  EXPECT_FALSE(sccs.sccs()[static_cast<std::size_t>(traversal)].lightweight());

  // Update instructions: parallel SCCs, distinct from traversal.
  const int load = sccs.sccOf(k.valueLoad);
  const int store = sccs.sccOf(k.valueStore);
  EXPECT_NE(load, traversal);
  EXPECT_EQ(sccs.sccs()[static_cast<std::size_t>(load)].cls,
            SccClass::Parallel);
  EXPECT_EQ(sccs.sccs()[static_cast<std::size_t>(store)].cls,
            SccClass::Parallel);

  // Condensation reaches from traversal to the update.
  EXPECT_TRUE(sccs.reaches(traversal, store));
  EXPECT_FALSE(sccs.reaches(store, traversal));
}

TEST(Scc, IrregularWriteIsSequential) {
  auto k = buildArrayKernel();
  DominatorTree dom(*k.fn);
  DominatorTree postDom(*k.fn, true);
  LoopInfo loops(*k.fn, dom);
  AliasAnalysis alias(*k.fn, *k.module, loops);
  ControlDependence cd(*k.fn, postDom);
  Pdg pdg(*k.fn, *loops.loops().front(), alias, cd);
  SccGraph sccs(pdg, [](const Instruction*) { return 1.0; });

  // C[h] load/store cycle: sequential.
  const int cScc = sccs.sccOf(k.cStore);
  EXPECT_EQ(sccs.sccOf(k.cLoad), cScc);
  EXPECT_EQ(sccs.sccs()[static_cast<std::size_t>(cScc)].cls,
            SccClass::Sequential);

  // A[i] accesses: parallel.
  EXPECT_EQ(sccs.sccs()[static_cast<std::size_t>(sccs.sccOf(k.aStore))].cls,
            SccClass::Parallel);
}

TEST(Profile, BlockCountsAndHotLoop) {
  auto k = buildListKernel();
  interp::Memory memory(1 << 16);
  // Build a 7-node list: {f64 value, ptr next} with elem size 16.
  std::uint64_t head = 0;
  for (int i = 0; i < 7; ++i) {
    const std::uint64_t node = memory.allocate(16, 8);
    memory.writeF64(node, 2.0);
    memory.writePtr(node + 8, head);
    head = node;
  }
  const std::uint64_t args[] = {head};
  const ProfileData profile = profileFunction(*k.fn, args, memory);
  EXPECT_EQ(profile.countOf(k.fn->findBlock("body")), 7u);
  EXPECT_EQ(profile.countOf(k.fn->findBlock("header")), 8u);
  EXPECT_GT(profile.totalInstructions, 0u);

  DominatorTree dom(*k.fn);
  LoopInfo loops(*k.fn, dom);
  EXPECT_EQ(hottestLoop(loops, profile), loops.loops().front().get());

  // The kernel really ran: every node scaled by 0.9.
  EXPECT_DOUBLE_EQ(memory.readF64(head), 1.8);
}

} // namespace
} // namespace cgpa::analysis
