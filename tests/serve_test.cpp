// cgpad service-layer tests: wire protocol encode/decode, newline framing
// (including oversized-frame recovery), the shared plan cache, the
// worker-pool server (in-process and over a Unix socket), the concurrency
// stress test against a sequential baseline, and the thread-safety
// regressions for SystemSimulator and RemarkCollector::Builder.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "fuzz/corpus.hpp"
#include "serve/executor.hpp"
#include "serve/framing.hpp"
#include "serve/job.hpp"
#include "serve/plan_cache.hpp"
#include "serve/server.hpp"
#include "sim/system.hpp"
#include "trace/json.hpp"
#include "trace/remarks.hpp"

namespace cgpa {
namespace {

// --- Helpers. --------------------------------------------------------------

/// Spec line of the i-th checked-in corpus file (sorted by name).
std::string corpusSpecLine(std::size_t index) {
  const std::vector<std::string> files =
      fuzz::listCorpusFiles(CGPA_CORPUS_DIR);
  EXPECT_GT(files.size(), index) << "corpus too small";
  std::string error;
  const std::optional<fuzz::LoopSpec> spec =
      fuzz::readCorpusSpec(files[index], &error);
  EXPECT_TRUE(spec.has_value()) << files[index] << ": " << error;
  return fuzz::serializeSpec(*spec);
}

/// dump(0) with the cacheHit flag normalized away: a response must be
/// byte-identical no matter how warm the cache was, except for that flag.
std::string normalized(const trace::JsonValue& response) {
  trace::JsonValue copy = response;
  if (copy.find("cacheHit") != nullptr)
    copy.set("cacheHit", false);
  return copy.dump(0);
}

serve::JobRequest kernelJob(const std::string& kernel,
                            const std::string& id) {
  serve::JobRequest job;
  job.id = trace::JsonValue(id);
  job.kernel = kernel;
  return job;
}

serve::JobRequest specJob(const std::string& spec, const std::string& id) {
  serve::JobRequest job;
  job.id = trace::JsonValue(id);
  job.spec = spec;
  job.workers = 2;
  return job;
}

// --- Protocol: cgpa.job.v1 decode/encode. ----------------------------------

TEST(ServeJob, RoundTripsThroughJson) {
  serve::JobRequest job;
  job.id = trace::JsonValue("req-7");
  job.kernel = "em3d";
  job.flow = "p2";
  job.workers = 8;
  job.fifoDepth = 4;
  job.scale = 2;
  job.seed = 99;
  job.backend = sim::SimBackend::Interp;
  job.maxCycles = 123456;

  Expected<serve::JobRequest> back =
      serve::jobFromFrame(serve::jobToJson(job).dump(0));
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->id.asString(), "req-7");
  EXPECT_EQ(back->op, serve::JobOp::Run);
  EXPECT_EQ(back->kernel, "em3d");
  EXPECT_EQ(back->flow, "p2");
  EXPECT_EQ(back->workers, 8);
  EXPECT_EQ(back->fifoDepth, 4);
  EXPECT_EQ(back->scale, 2);
  EXPECT_EQ(back->seed, 99u);
  EXPECT_EQ(back->backend, sim::SimBackend::Interp);
  EXPECT_EQ(back->maxCycles, 123456u);
}

TEST(ServeJob, DefaultsMirrorTheCgpacCli) {
  Expected<serve::JobRequest> job =
      serve::jobFromFrame(R"({"schema":"cgpa.job.v1","kernel":"em3d"})");
  ASSERT_TRUE(job.ok()) << job.status().message();
  EXPECT_EQ(job->flow, "p1");
  EXPECT_EQ(job->workers, 4);
  EXPECT_EQ(job->fifoDepth, 16);
  EXPECT_EQ(job->scale, 1);
  EXPECT_EQ(job->seed, 42u);
  EXPECT_EQ(job->backend, sim::SimBackend::Auto);
  EXPECT_EQ(job->maxCycles, 0u);
}

TEST(ServeJob, NumericIdsAreEchoed) {
  Expected<serve::JobRequest> job = serve::jobFromFrame(
      R"({"schema":"cgpa.job.v1","id":17,"kernel":"em3d"})");
  ASSERT_TRUE(job.ok());
  const trace::JsonValue result =
      serve::jobResultError(job->id, Status::error(ErrorCode::Internal, "x"));
  EXPECT_EQ(result.find("id")->asUint(), 17u);
}

TEST(ServeJob, SchemaViolationsAreInvalidArgument) {
  const char* bad[] = {
      R"({"kernel":"em3d"})",                                  // no schema
      R"({"schema":"cgpa.job.v2","kernel":"em3d"})",           // wrong tag
      R"({"schema":"cgpa.job.v1"})",                           // no target
      R"({"schema":"cgpa.job.v1","kernel":"a","spec":"b"})",   // both
      R"({"schema":"cgpa.job.v1","kernel":"a","op":"nop"})",   // bad op
      R"({"schema":"cgpa.job.v1","kernel":"a","flow":"p9"})",  // bad flow
      R"({"schema":"cgpa.job.v1","kernel":"a","workers":0})",  // nonpositive
      R"({"schema":"cgpa.job.v1","kernel":"a","workers":1.5})",
      R"({"schema":"cgpa.job.v1","kernel":"a","seed":-4})",
      R"({"schema":"cgpa.job.v1","kernel":"a","seed":1.5})",    // fractional
      R"({"schema":"cgpa.job.v1","kernel":"a","seed":1e300})",  // > 2^64
      R"({"schema":"cgpa.job.v1","kernel":"a","maxCycles":2.5})",
      R"({"schema":"cgpa.job.v1","kernel":"a","backend":"x"})",
      R"({"schema":"cgpa.job.v1","id":true,"kernel":"a"})",    // bool id
      R"([1,2,3])",                                            // not object
  };
  for (const char* frame : bad) {
    Expected<serve::JobRequest> job = serve::jobFromFrame(frame);
    ASSERT_FALSE(job.ok()) << frame;
    EXPECT_EQ(job.status().code(), ErrorCode::InvalidArgument) << frame;
  }
}

TEST(ServeJob, U64FieldsCoverTheFullRangeExactly) {
  // Integer literals parse exactly: the top of the uint64 range must not
  // be rejected (or rounded) by a double detour.
  Expected<serve::JobRequest> job = serve::jobFromFrame(
      R"({"schema":"cgpa.job.v1","kernel":"a",)"
      R"("seed":18446744073709551615,"maxCycles":9007199254740993})");
  ASSERT_TRUE(job.ok()) << job.status().message();
  EXPECT_EQ(job->seed, 18446744073709551615ULL);
  EXPECT_EQ(job->maxCycles, 9007199254740993ULL); // 2^53 + 1, exact
  // Integral float-form values below 2^64 are exact too.
  job = serve::jobFromFrame(
      R"({"schema":"cgpa.job.v1","kernel":"a","seed":1e15})");
  ASSERT_TRUE(job.ok()) << job.status().message();
  EXPECT_EQ(job->seed, 1000000000000000ULL);
}

TEST(ServeJob, MalformedJsonIsParseError) {
  Expected<serve::JobRequest> job = serve::jobFromFrame("{not json");
  ASSERT_FALSE(job.ok());
  EXPECT_EQ(job.status().code(), ErrorCode::ParseError);
}

TEST(ServeJob, ErrorResultEmbedsFailureDocument) {
  const trace::JsonValue result = serve::jobResultError(
      trace::JsonValue("j1"),
      Status::error(ErrorCode::SimDeadlock, "all engines parked"));
  EXPECT_EQ(result.find("schema")->asString(), "cgpa.jobresult.v1");
  EXPECT_EQ(result.find("id")->asString(), "j1");
  EXPECT_FALSE(result.find("ok")->asBool());
  const trace::JsonValue* error = result.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->find("schema")->asString(), "cgpa.failure.v1");
  EXPECT_EQ(error->find("code")->asString(), "sim-deadlock");
}

TEST(ServeJob, CompileKeyCoversPipelineIdentityOnly) {
  serve::JobRequest a = kernelJob("em3d", "x");
  serve::JobRequest b = a;
  b.seed = 123;      // workload-only: same compiled pipeline
  b.fifoDepth = 2;   // sim-only: same compiled pipeline
  EXPECT_EQ(a.compileKey(), b.compileKey());
  b.workers = 8; // changes the partition
  EXPECT_NE(a.compileKey(), b.compileKey());
  serve::JobRequest c = a;
  c.flow = "legup";
  EXPECT_NE(a.compileKey(), c.compileKey());
}

// --- Framing. --------------------------------------------------------------

/// FrameReader over an in-memory byte string, delivered `chunk` bytes at a
/// time to exercise reassembly across reads.
serve::FrameReader stringReader(std::string data, std::size_t chunk,
                                std::size_t maxFrame =
                                    serve::kDefaultMaxFrameBytes) {
  auto cursor = std::make_shared<std::size_t>(0);
  auto buffer = std::make_shared<std::string>(std::move(data));
  return serve::FrameReader(
      [cursor, buffer, chunk](char* out, std::size_t capacity) -> long {
        const std::size_t want =
            std::min({chunk, capacity, buffer->size() - *cursor});
        std::memcpy(out, buffer->data() + *cursor, want);
        *cursor += want;
        return static_cast<long>(want);
      },
      maxFrame);
}

TEST(ServeFraming, ReassemblesFramesAcrossSmallReads) {
  serve::FrameReader reader =
      stringReader("{\"a\":1}\n{\"b\":2}\r\nfinal-no-newline", 3);
  auto one = reader.next();
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(**one, "{\"a\":1}");
  auto two = reader.next();
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(**two, "{\"b\":2}"); // trailing \r stripped
  auto three = reader.next();
  ASSERT_TRUE(three.ok());
  EXPECT_EQ(**three, "final-no-newline"); // unterminated tail still a frame
  auto end = reader.next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
}

TEST(ServeFraming, OversizedFrameRejectedAndConnectionSurvives) {
  const std::string huge(100, 'x');
  serve::FrameReader reader =
      stringReader(huge + "\n{\"ok\":1}\n", 7, /*maxFrame=*/32);
  auto first = reader.next();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), ErrorCode::InvalidArgument);
  // The oversized line was consumed through its newline: the reader is
  // still usable and the next frame parses cleanly.
  auto second = reader.next();
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_EQ(**second, "{\"ok\":1}");
}

TEST(ServeFraming, ReadErrorsAreIoError) {
  serve::FrameReader reader([](char*, std::size_t) -> long { return -1; });
  auto frame = reader.next();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), ErrorCode::IoError);
}

// --- Plan cache. -----------------------------------------------------------

TEST(ServePlanCache, MissCompileInsertHit) {
  serve::PlanCache cache(8);
  const serve::JobRequest job = specJob(corpusSpecLine(0), "a");
  EXPECT_EQ(cache.lookup(job.compileKey()), nullptr);

  Expected<std::shared_ptr<serve::CompiledPlan>> plan =
      serve::compileJobPlan(job);
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  EXPECT_EQ((*plan)->irHash.size(), 16u);
  EXPECT_FALSE((*plan)->remarksDigest.empty());
  EXPECT_GT((*plan)->remarks.size(), 0u);

  cache.insert(job.compileKey(), *plan);
  const std::shared_ptr<const serve::CompiledPlan> hit =
      cache.lookup(job.compileKey());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->irHash, (*plan)->irHash);

  const serve::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ServePlanCache, RacingInsertReturnsCanonicalEntry) {
  serve::PlanCache cache(8);
  const serve::JobRequest job = specJob(corpusSpecLine(0), "a");
  auto first = serve::compileJobPlan(job);
  auto second = serve::compileJobPlan(job); // the losing racer's copy
  ASSERT_TRUE(first.ok() && second.ok());
  const auto canonical = cache.insert(job.compileKey(), *first);
  const auto loser = cache.insert(job.compileKey(), *second);
  EXPECT_EQ(canonical.get(), loser.get()); // loser's copy was dropped
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ServePlanCache, EvictsLeastRecentlyUsedBeyondCapacity) {
  serve::PlanCache cache(2);
  std::vector<serve::JobRequest> jobs;
  for (std::size_t i = 0; i < 3; ++i)
    jobs.push_back(specJob(corpusSpecLine(i), "j" + std::to_string(i)));
  for (const serve::JobRequest& job : jobs) {
    auto plan = serve::compileJobPlan(job);
    ASSERT_TRUE(plan.ok()) << plan.status().message();
    cache.insert(job.compileKey(), *plan);
  }
  const serve::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  // The oldest entry (jobs[0]) was evicted; the newest two remain.
  EXPECT_EQ(cache.lookup(jobs[0].compileKey()), nullptr);
  EXPECT_NE(cache.lookup(jobs[2].compileKey()), nullptr);
}

// --- Server: in-process submission. ----------------------------------------

TEST(ServeServer, SecondRunIsACacheHitAndOtherwiseIdentical) {
  serve::Server server({.workers = 2, .cacheEntries = 8});
  const trace::JsonValue cold = server.submit(kernelJob("em3d", "c"));
  const trace::JsonValue warm = server.submit(kernelJob("em3d", "c"));
  ASSERT_TRUE(cold.find("ok")->asBool()) << cold.dump(0);
  EXPECT_FALSE(cold.find("cacheHit")->asBool());
  EXPECT_TRUE(warm.find("cacheHit")->asBool());
  EXPECT_EQ(normalized(cold), normalized(warm));
  EXPECT_TRUE(cold.find("correct")->asBool());

  const trace::JsonValue stats = server.serverStatsJson();
  EXPECT_EQ(stats.find("schema")->asString(), "cgpa.serverstats.v1");
  const trace::JsonValue* cache = stats.find("cache");
  EXPECT_EQ(cache->find("lookups")->asUint(), 2u);
  EXPECT_EQ(cache->find("hits")->asUint(), 1u);
  EXPECT_EQ(cache->find("misses")->asUint(), 1u);
  const trace::JsonValue* jobs = stats.find("jobs");
  EXPECT_EQ(jobs->find("accepted")->asUint(), 2u);
  EXPECT_EQ(jobs->find("completed")->asUint(), 2u);
  EXPECT_EQ(jobs->find("failed")->asUint(), 0u);
}

TEST(ServeServer, JobFailuresAreOkFalseResponses) {
  serve::Server server({.workers = 1, .cacheEntries = 4});
  const trace::JsonValue bad = server.submit(kernelJob("no-such-kernel", "x"));
  EXPECT_FALSE(bad.find("ok")->asBool());
  EXPECT_EQ(bad.find("error")->find("code")->asString(), "invalid-argument");
  EXPECT_EQ(server.serverStatsJson().find("jobs")->find("failed")->asUint(),
            1u);
}

TEST(ServeServer, ShutdownDrainsAcceptedJobsAndRejectsNewOnes) {
  serve::Server server({.workers = 1, .cacheEntries = 8});
  const std::string spec = corpusSpecLine(0);
  std::vector<std::future<trace::JsonValue>> accepted;
  for (int i = 0; i < 6; ++i)
    accepted.push_back(
        server.submitAsync(specJob(spec, "pre-" + std::to_string(i))));
  server.requestShutdown();
  const trace::JsonValue rejected = server.submit(specJob(spec, "post"));
  EXPECT_FALSE(rejected.find("ok")->asBool());

  for (auto& future : accepted) {
    const trace::JsonValue response = future.get();
    EXPECT_TRUE(response.find("ok")->asBool()) << response.dump(0);
  }
  server.wait();
  const trace::JsonValue stats = server.serverStatsJson();
  EXPECT_EQ(stats.find("jobs")->find("accepted")->asUint(), 6u);
  EXPECT_EQ(stats.find("jobs")->find("completed")->asUint(), 6u);
}

// --- Server: Unix-socket transport. ----------------------------------------

int connectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << std::strerror(errno);
  return fd;
}

TEST(ServeServer, SocketConnectionSurvivesProtocolErrors) {
  serve::Server server({.workers = 2, .cacheEntries = 8});
  const std::string path = testing::TempDir() + "cgpad_test.sock";
  ASSERT_TRUE(server.listenUnix(path).ok());

  const int fd = connectUnix(path);
  ASSERT_TRUE(serve::writeFrame(fd, "{broken json").ok());
  ASSERT_TRUE(
      serve::writeFrame(
          fd, R"({"schema":"cgpa.job.v1","id":"k1","kernel":"em3d"})")
          .ok());
  ASSERT_TRUE(
      serve::writeFrame(fd,
                        R"({"schema":"cgpa.job.v1","id":"s1","op":"stats"})")
          .ok());

  serve::FrameReader reader = serve::fdFrameReader(fd);
  // Responses to run jobs may interleave with the inline protocol-error
  // and stats responses: collect until each expected id arrived.
  bool sawError = false, sawRun = false, sawStats = false;
  for (int i = 0; i < 3; ++i) {
    auto frame = reader.next();
    ASSERT_TRUE(frame.ok() && frame->has_value());
    const auto doc = trace::parseJson(**frame);
    ASSERT_TRUE(doc.has_value()) << **frame;
    const std::string id = doc->find("id")->asString();
    if (id.empty()) {
      sawError = true;
      EXPECT_FALSE(doc->find("ok")->asBool());
    } else if (id == "k1") {
      sawRun = true;
      EXPECT_TRUE(doc->find("ok")->asBool()) << **frame;
      EXPECT_TRUE(doc->find("correct")->asBool());
    } else if (id == "s1") {
      sawStats = true;
      const trace::JsonValue* stats = doc->find("serverStats");
      ASSERT_NE(stats, nullptr);
      EXPECT_GE(stats->find("jobs")->find("protocolErrors")->asUint(), 1u);
    }
  }
  EXPECT_TRUE(sawError && sawRun && sawStats);
  ::close(fd);
  server.wait();
}

TEST(ServeServer, ClientDisconnectMidBatchDoesNotKillTheServer) {
  serve::Server server({.workers = 2, .cacheEntries = 8});
  const std::string path = testing::TempDir() + "cgpad_disconnect.sock";
  ASSERT_TRUE(server.listenUnix(path).ok());

  // Queue a batch of jobs, then hang up before any response arrives: every
  // completion callback now writes to a dead socket. Those writes must
  // surface as per-connection EPIPE errors — not raise SIGPIPE, which
  // would kill this whole process (the daemon, in production).
  const int fd = connectUnix(path);
  const std::string spec = corpusSpecLine(0);
  for (int i = 0; i < 4; ++i) {
    const serve::JobRequest job = specJob(spec, "gone-" + std::to_string(i));
    ASSERT_TRUE(serve::writeFrame(fd, serve::jobToJson(job).dump(0)).ok());
  }
  ::close(fd);

  // The server must stay up and fully serve a later connection.
  const int fd2 = connectUnix(path);
  ASSERT_TRUE(
      serve::writeFrame(
          fd2, R"({"schema":"cgpa.job.v1","id":"after","kernel":"em3d"})")
          .ok());
  serve::FrameReader reader = serve::fdFrameReader(fd2);
  Expected<std::optional<std::string>> frame = reader.next();
  ASSERT_TRUE(frame.ok() && frame->has_value());
  const auto doc = trace::parseJson(**frame);
  ASSERT_TRUE(doc.has_value()) << **frame;
  EXPECT_EQ(doc->find("id")->asString(), "after");
  EXPECT_TRUE(doc->find("ok")->asBool()) << **frame;
  ::close(fd2);
  server.wait();
}

// --- Concurrency stress: parallel results match the sequential baseline. ---

/// Mixed-job stress: `threads` clients each submit `perThread` jobs cycling
/// through distinct job shapes; every response must match the sequential
/// library-path baseline for its shape (modulo cacheHit), and the cache
/// counters must balance. Sized by the SOAK knob: the tier-1 run stays
/// small, `ctest -C soak` (serve-soak) sets CGPA_SERVE_SOAK=1 for the
/// heavy version. Run a TSan build with -DCGPA_SERVE_TSAN=ON locally to
/// audit the locking.
void runStress(int threads, int perThread) {
  std::vector<serve::JobRequest> shapes;
  shapes.push_back(kernelJob("em3d", "t"));
  shapes.push_back(kernelJob("hash-indexing", "t"));
  shapes.push_back(specJob(corpusSpecLine(0), "t"));
  shapes.push_back(specJob(corpusSpecLine(1), "t"));
  shapes.back().backend = sim::SimBackend::Interp;

  std::vector<std::string> baseline;
  for (const serve::JobRequest& shape : shapes) {
    Expected<trace::JsonValue> direct = serve::runJobDirect(shape);
    ASSERT_TRUE(direct.ok()) << direct.status().message();
    baseline.push_back(normalized(*direct));
  }

  serve::Server server({.workers = 4, .cacheEntries = 8});
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    clients.emplace_back([&, t] {
      for (int i = 0; i < perThread; ++i) {
        const std::size_t shape =
            static_cast<std::size_t>(t + i) % shapes.size();
        const trace::JsonValue response = server.submit(shapes[shape]);
        if (normalized(response) != baseline[shape])
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread& client : clients)
    client.join();
  EXPECT_EQ(mismatches.load(), 0);

  const serve::PlanCacheStats stats = server.cacheStats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.lookups,
            static_cast<std::uint64_t>(threads) *
                static_cast<std::uint64_t>(perThread));
  const trace::JsonValue jobs = server.serverStatsJson();
  EXPECT_EQ(jobs.find("jobs")->find("completed")->asUint(),
            stats.lookups);
  EXPECT_EQ(jobs.find("jobs")->find("failed")->asUint(), 0u);
  server.wait();
}

TEST(ServeStress, ConcurrentMixedJobsMatchSequentialBaseline) {
  const bool soak = std::getenv("CGPA_SERVE_SOAK") != nullptr;
  runStress(soak ? 8 : 4, soak ? 32 : 4);
}

// --- Thread-safety regressions. --------------------------------------------

// SystemSimulator must never write through caller-supplied ScheduleOptions
// remarks: the constructor sanitizes the pointer so a compile-time
// RemarkCollector shared across worker threads is read-only by
// construction (the serve executor relies on this).
TEST(ServeRegression, SystemSimulatorNeverWritesCallerRemarks) {
  auto plan = serve::compileJobPlan(specJob(corpusSpecLine(0), "r"));
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  trace::RemarkCollector collector;
  sim::SystemConfig config;
  config.schedule.remarks = &collector;
  sim::SystemSimulator simulator((*plan)->pipeline(), config);
  fuzz::FuzzWorkload work =
      fuzz::buildWorkload(*fuzz::parseSpecLine(corpusSpecLine(0)));
  ASSERT_TRUE(simulator.runChecked(*work.memory, work.args).ok());
  EXPECT_TRUE(collector.empty())
      << "simulation-side scheduling leaked remarks into the caller's "
         "collector";
}

// A compiled plan is shared read-only across workers, but register-slot
// numbering is lazy: SlotMap construction calls Function::finalizeSlots(),
// which would mutate the shared IR the first time each worker builds a
// simulator from a cached plan (a data race TSan catches). compileJobPlan
// must pre-finalize every function while the plan is still thread-private,
// and finalizeSlots must be write-free once numbering is in place.
TEST(ServeRegression, CompiledPlansArriveSlotFinalized) {
  for (const serve::JobRequest& job :
       {kernelJob("em3d", "k"), specJob(corpusSpecLine(0), "s")}) {
    auto plan = serve::compileJobPlan(job);
    ASSERT_TRUE(plan.ok()) << plan.status().message();
    const ir::Module& module = !job.kernel.empty()
                                   ? *(*plan)->accel->module
                                   : *(*plan)->specModule;
    for (const auto& fn : module.functions()) {
      int next = 0;
      for (const auto& argument : fn->arguments())
        EXPECT_EQ(argument->slot(), next++)
            << fn->name() << ": argument not pre-finalized";
      for (const auto& block : fn->blocks())
        for (const auto& inst : block->instructions())
          EXPECT_EQ(inst->slot(), next++)
              << fn->name() << ": instruction not pre-finalized";
      // Re-finalization of an already-numbered function must be a no-op
      // returning the same count (the write-free property itself is
      // checked by running this suite under -DCGPA_SERVE_TSAN).
      EXPECT_EQ(fn->finalizeSlots(), next) << fn->name();
    }
  }
}

// RemarkCollector::Builder addresses its remark as (collector, index):
// another add() mid-chain may reallocate the vector, and a held Remark&
// would dangle (ASan catches the old bug on this test).
TEST(ServeRegression, RemarkBuilderSurvivesVectorReallocation) {
  trace::RemarkCollector collector;
  trace::RemarkCollector::Builder first = collector.add("p", "r", "s0");
  for (int i = 0; i < 1000; ++i)
    collector.add("p", "r", "s" + std::to_string(i + 1));
  first.note("late write").arg("tag", 7);
  ASSERT_EQ(collector.size(), 1001u);
  EXPECT_EQ(collector.remarks()[0].message, "late write");
  const trace::RemarkArg* arg = collector.remarks()[0].findArg("tag");
  ASSERT_NE(arg, nullptr);
  EXPECT_EQ(arg->intValue, 7);
}

} // namespace
} // namespace cgpa
