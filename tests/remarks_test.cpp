// Golden determinism and content tests for the compiler decision
// provenance (trace/remarks.hpp + cgpa.remarks.v1).
//
// The remarks document must be bit-identical across independent compiles
// of the same input — it is diffed in regression workflows, so any
// nondeterminism (hash-ordered iteration, pointer-keyed output) is a bug.
// Driven over checked-in corpus specs so the covered loop shapes grow with
// the corpus.
#include "trace/remarks.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/alias.hpp"
#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/pdg.hpp"
#include "analysis/scc.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/loopgen.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/transform.hpp"
#include "trace/json.hpp"
#include "trace/remarks_json.hpp"

namespace cgpa {
namespace {

/// One full front-end compile of `spec` (analyses -> partition ->
/// transform) with remarks collected; returns the serialized
/// cgpa.remarks.v1 document.
std::string compileWithRemarks(const fuzz::LoopSpec& spec,
                               trace::RemarkCollector& remarks) {
  fuzz::GeneratedLoop loop = fuzz::buildLoop(spec);
  ir::Function* fn = loop.fn;

  analysis::DominatorTree dom(*fn);
  analysis::DominatorTree postDom(*fn, true);
  analysis::LoopInfo loops(*fn, dom);
  analysis::AliasAnalysis alias(*fn, *loop.module, loops);
  analysis::ControlDependence controlDeps(*fn, postDom);
  ir::BasicBlock* header = fn->findBlock(loop.headerName);
  analysis::Loop* target = loops.loopWithHeader(header);
  EXPECT_NE(target, nullptr);

  analysis::Pdg pdg(*fn, *target, alias, controlDeps, &remarks);
  analysis::SccGraph sccs(
      pdg, [](const ir::Instruction*) { return 1.0; }, &remarks);

  pipeline::PartitionOptions options;
  options.numWorkers = 2;
  options.remarks = &remarks;
  pipeline::PipelinePlan plan =
      pipeline::partitionLoop(sccs, *target, options);
  if (pipeline::checkTransformPreconditions(plan).ok())
    pipeline::transformLoop(*fn, plan, /*loopId=*/0, &remarks);

  std::ostringstream out;
  trace::remarksJson(remarks).dump(out, 2);
  return out.str();
}

bool hasRemark(const trace::RemarkCollector& remarks, const std::string& pass,
               const std::string& rule) {
  for (const trace::Remark& remark : remarks.remarks())
    if (remark.pass == pass && remark.rule == rule)
      return true;
  return false;
}

class RemarksGoldenTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RemarksGoldenTest, BitIdenticalAcrossCompiles) {
  const std::string path = std::string(CGPA_CORPUS_DIR) + "/" + GetParam();
  std::string error;
  const auto spec = fuzz::readCorpusSpec(path, &error);
  ASSERT_TRUE(spec.has_value()) << path << ": " << error;

  trace::RemarkCollector first;
  trace::RemarkCollector second;
  const std::string a = compileWithRemarks(*spec, first);
  const std::string b = compileWithRemarks(*spec, second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(a, b) << "remarks document differs between identical compiles";
}

TEST_P(RemarksGoldenTest, CoreRulesPresent) {
  const std::string path = std::string(CGPA_CORPUS_DIR) + "/" + GetParam();
  std::string error;
  const auto spec = fuzz::readCorpusSpec(path, &error);
  ASSERT_TRUE(spec.has_value()) << path << ": " << error;

  trace::RemarkCollector remarks;
  compileWithRemarks(*spec, remarks);
  // Every compile visits PDG construction, SCC classification, and the
  // partitioner, whatever plan shape falls out.
  EXPECT_TRUE(hasRemark(remarks, "pdg", "summary"));
  EXPECT_TRUE(hasRemark(remarks, "scc", "classified"));
  EXPECT_TRUE(hasRemark(remarks, "partition", "plan") ||
              hasRemark(remarks, "partition", "sequential-plan"));
}

TEST_P(RemarksGoldenTest, SerializedDocumentValidates) {
  const std::string path = std::string(CGPA_CORPUS_DIR) + "/" + GetParam();
  std::string error;
  const auto spec = fuzz::readCorpusSpec(path, &error);
  ASSERT_TRUE(spec.has_value()) << path << ": " << error;

  trace::RemarkCollector remarks;
  const std::string text = compileWithRemarks(*spec, remarks);
  const auto doc = trace::parseJson(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("schema")->asString(), "cgpa.remarks.v1");
  EXPECT_EQ(doc->find("count")->asUint(), remarks.size());
  EXPECT_EQ(doc->find("remarks")->items().size(), remarks.size());
  // The passes tally covers every remark.
  std::uint64_t total = 0;
  for (const auto& [name, value] : doc->find("passes")->members())
    total += value.asUint();
  EXPECT_EQ(total, remarks.size());
}

std::string corpusName(const ::testing::TestParamInfo<const char*>& info) {
  std::string name = info.param;
  for (char& c : name)
    if (c == '-' || c == '.')
      c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, RemarksGoldenTest,
                         ::testing::Values("gather-cond-store.cgir",
                                           "early-exit-reduction.cgir"),
                         corpusName);

TEST(RemarkCollector, BuilderRecordsEagerly) {
  trace::RemarkCollector remarks;
  // Dropping the chain mid-way must still record the remark.
  remarks.add("scc", "classified", "scc0");
  ASSERT_EQ(remarks.size(), 1u);
  remarks.add("partition", "plan", "loop")
      .note("2 stages")
      .arg("workers", 4)
      .arg("parallel", true)
      .arg("weight", 1.5)
      .arg("shape", "seq|par");
  ASSERT_EQ(remarks.size(), 2u);
  const trace::Remark& remark = remarks.remarks()[1];
  EXPECT_EQ(remark.message, "2 stages");
  ASSERT_NE(remark.findArg("workers"), nullptr);
  EXPECT_EQ(remark.findArg("workers")->intValue, 4);
  EXPECT_TRUE(remark.findArg("parallel")->boolValue);
  EXPECT_DOUBLE_EQ(remark.findArg("weight")->floatValue, 1.5);
  EXPECT_EQ(remark.findArg("shape")->text, "seq|par");
  EXPECT_EQ(remark.findArg("absent"), nullptr);
}

} // namespace
} // namespace cgpa
