// Tests for the differential fuzzing subsystem itself: generator
// determinism, spec serialization, the three-executor oracle, invariant
// reject paths, the shrinker, and replay of the checked-in corpus.
#include "fuzz/corpus.hpp"
#include "fuzz/invariants.hpp"
#include "fuzz/loopgen.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"

#include "analysis/alias.hpp"
#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/pdg.hpp"
#include "analysis/scc.hpp"
#include "interp/interpreter.hpp"
#include "ir/verifier.hpp"
#include "pipeline/functional_exec.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/transform.hpp"
#include "sim/system.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>

namespace cgpa {
namespace {

using fuzz::BodyOp;
using fuzz::LoopSpec;

/// A generated loop taken through analyses, partition, and transform —
/// with the analyses kept alive so the plan's SccGraph stays valid.
struct CompiledLoop {
  fuzz::GeneratedLoop gen;
  std::unique_ptr<analysis::DominatorTree> dom;
  std::unique_ptr<analysis::DominatorTree> postDom;
  std::unique_ptr<analysis::LoopInfo> loops;
  std::unique_ptr<analysis::AliasAnalysis> alias;
  std::unique_ptr<analysis::ControlDependence> cd;
  std::unique_ptr<analysis::Pdg> pdg;
  std::unique_ptr<analysis::SccGraph> sccs;
  pipeline::PipelinePlan plan;
  pipeline::PipelineModule pm;
};

CompiledLoop compileSpec(const LoopSpec& spec,
                         const pipeline::PartitionOptions& options = {}) {
  CompiledLoop c;
  c.gen = fuzz::buildLoop(spec);
  ir::Function* fn = c.gen.fn;
  c.dom = std::make_unique<analysis::DominatorTree>(*fn);
  c.postDom = std::make_unique<analysis::DominatorTree>(*fn, true);
  c.loops = std::make_unique<analysis::LoopInfo>(*fn, *c.dom);
  c.alias = std::make_unique<analysis::AliasAnalysis>(*fn, *c.gen.module,
                                                      *c.loops);
  c.cd = std::make_unique<analysis::ControlDependence>(*fn, *c.postDom);
  analysis::Loop* loop = c.loops->topLevelLoops().front();
  c.pdg = std::make_unique<analysis::Pdg>(*fn, *loop, *c.alias, *c.cd);
  c.sccs = std::make_unique<analysis::SccGraph>(
      *c.pdg, [](const ir::Instruction*) { return 1.0; });
  c.plan = pipeline::partitionLoop(*c.sccs, *loop, options);
  c.pm = pipeline::transformLoop(*fn, c.plan, 0);
  return c;
}

LoopSpec specWithOps(std::vector<BodyOp> ops, int trip = 16) {
  LoopSpec spec;
  spec.dataSeed = 7;
  spec.style = fuzz::IterStyle::Counted;
  spec.tripCount = trip;
  spec.ops = std::move(ops);
  return spec;
}

// ---------------------------------------------------------------------------
// Generator determinism.

TEST(FuzzGen, SpecFromSeedIsDeterministic) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const LoopSpec a = fuzz::specFromSeed(seed);
    const LoopSpec b = fuzz::specFromSeed(seed);
    EXPECT_EQ(fuzz::serializeSpec(a), fuzz::serializeSpec(b)) << seed;
    EXPECT_FALSE(a.ops.empty()) << seed;
  }
}

TEST(FuzzGen, GeneratedModulesAlwaysVerify) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const fuzz::GeneratedLoop loop = fuzz::buildLoop(fuzz::specFromSeed(seed));
    EXPECT_EQ(ir::verifyModule(*loop.module), "") << "seed " << seed;
    EXPECT_NE(loop.fn, nullptr);
  }
}

TEST(FuzzGen, WorkloadIsBitIdentical) {
  for (std::uint64_t seed : {1ULL, 9ULL, 23ULL}) {
    const LoopSpec spec = fuzz::specFromSeed(seed);
    const fuzz::FuzzWorkload a = fuzz::buildWorkload(spec);
    const fuzz::FuzzWorkload b = fuzz::buildWorkload(spec);
    EXPECT_EQ(a.args, b.args) << seed;
    EXPECT_EQ(a.memory->raw(), b.memory->raw()) << seed;
  }
}

// ---------------------------------------------------------------------------
// Spec serialization / corpus format.

TEST(FuzzCorpus, SerializeParseRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const LoopSpec spec = fuzz::specFromSeed(seed);
    const std::string line = fuzz::serializeSpec(spec);
    std::string error;
    const auto parsed = fuzz::parseSpecLine(line, &error);
    ASSERT_TRUE(parsed.has_value()) << line << ": " << error;
    EXPECT_EQ(fuzz::serializeSpec(*parsed), line);
    // The comment-prefixed form (as stored in corpus files) also parses.
    const auto prefixed = fuzz::parseSpecLine("; " + line);
    ASSERT_TRUE(prefixed.has_value());
    EXPECT_EQ(fuzz::serializeSpec(*prefixed), line);
  }
}

TEST(FuzzCorpus, ParseRejectsMalformed) {
  std::string error;
  EXPECT_FALSE(fuzz::parseSpecLine("", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fuzz::parseSpecLine("not-a-spec data=1", &error).has_value());
  EXPECT_FALSE(
      fuzz::parseSpecLine("fuzz-spec v1 data=1 trip=4", &error).has_value())
      << "missing ops must be rejected";
  EXPECT_FALSE(fuzz::parseSpecLine(
                   "fuzz-spec v1 data=1 style=zigzag trip=4 ops=reduction",
                   &error)
                   .has_value());
  EXPECT_FALSE(fuzz::parseSpecLine(
                   "fuzz-spec v1 data=1 trip=4 ops=no_such_op", &error)
                   .has_value());
  EXPECT_FALSE(fuzz::parseSpecLine(
                   "fuzz-spec v1 data=1 trip=-3 ops=reduction", &error)
                   .has_value());
}

TEST(FuzzCorpus, WriteReadList) {
  const std::string dir = testing::TempDir() + "cgpa_corpus_test";
  std::filesystem::create_directories(dir);
  const LoopSpec specA = fuzz::specFromSeed(3);
  const LoopSpec specB = fuzz::specFromSeed(4);
  ASSERT_TRUE(fuzz::writeCorpusFile(dir + "/b_second.cgir", specB));
  ASSERT_TRUE(fuzz::writeCorpusFile(dir + "/a_first.cgir", specA));

  const std::vector<std::string> files = fuzz::listCorpusFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("a_first"), std::string::npos);
  EXPECT_NE(files[1].find("b_second"), std::string::npos);

  std::string error;
  const auto back = fuzz::readCorpusSpec(files[0], &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(fuzz::serializeSpec(*back), fuzz::serializeSpec(specA));

  EXPECT_FALSE(fuzz::readCorpusSpec(dir + "/missing.cgir", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(fuzz::listCorpusFiles(dir + "/no_such_dir").empty());
}

// ---------------------------------------------------------------------------
// Oracle.

TEST(FuzzOracle, SmokeAcrossSeeds) {
  fuzz::OracleOptions options;
  options.workerCounts = {1, 2};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const fuzz::OracleReport report =
        fuzz::runOracle(fuzz::specFromSeed(seed), options);
    EXPECT_TRUE(report.ok) << "seed " << seed << "\n" << report.summary();
    EXPECT_FALSE(report.configs.empty());
    EXPECT_GT(report.invariantChecks, 0);
    EXPECT_GT(report.goldenInstructions, 0u);
  }
}

TEST(FuzzOracle, DepthOneFifos) {
  // Depth-1 channels force maximal backpressure: every produce must wait
  // for the matching consume. Results must be unchanged.
  fuzz::OracleOptions options;
  options.fifoDepth = 1;
  options.workerCounts = {1, 2, 4};
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const fuzz::OracleReport report =
        fuzz::runOracle(fuzz::specFromSeed(seed), options);
    EXPECT_TRUE(report.ok) << "seed " << seed << "\n" << report.summary();
  }
}

TEST(FuzzOracle, ShortTripWideParallel) {
  // trip=2 with four workers: two workers see real iterations, two only
  // ever run startup/drain — the broadcast and join paths must cope.
  LoopSpec spec = specWithOps({BodyOp::StoreAffine, BodyOp::Reduction}, 2);
  fuzz::OracleOptions options;
  options.workerCounts = {4};
  const fuzz::OracleReport report = fuzz::runOracle(spec, options);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(FuzzOracle, ZeroTripLoop) {
  LoopSpec spec = specWithOps({BodyOp::StoreAffine}, 0);
  const fuzz::OracleReport report = fuzz::runOracle(spec);
  EXPECT_TRUE(report.ok) << report.summary();
}

TEST(FuzzOracle, MultipleLiveoutsRetrievedInOrder) {
  // Two independent reductions: both accumulators are live out, so the
  // wrapper retrieves >= 2 liveouts whose ordering the return fold fixes.
  LoopSpec spec = specWithOps({BodyOp::Reduction, BodyOp::Reduction});
  const CompiledLoop c = compileSpec(spec);
  EXPECT_GE(c.pm.liveouts.size(), 2u) << "want two live-out accumulators";

  const fuzz::OracleReport report = fuzz::runOracle(spec);
  EXPECT_TRUE(report.ok) << report.summary();
}

// ---------------------------------------------------------------------------
// Invariant reject paths: a checker that cannot fail checks nothing.

TEST(FuzzInvariants, AcceptsCompiledLoop) {
  const CompiledLoop c =
      compileSpec(specWithOps({BodyOp::Reduction, BodyOp::StoreAffine}));
  const fuzz::InvariantReport plan = fuzz::checkPlan(c.plan);
  EXPECT_TRUE(plan.ok()) << plan.summary();
  EXPECT_GT(plan.checksRun, 0);
  const fuzz::InvariantReport module = fuzz::checkPipelineModule(c.pm);
  EXPECT_TRUE(module.ok()) << module.summary();
  const fuzz::InvariantReport schedules =
      fuzz::checkSchedules(c.pm, hls::ScheduleOptions{});
  EXPECT_TRUE(schedules.ok()) << schedules.summary();
  EXPECT_GT(schedules.checksRun, 0);
}

TEST(FuzzInvariants, RejectsTwoParallelStages) {
  CompiledLoop c =
      compileSpec(specWithOps({BodyOp::Reduction, BodyOp::StoreAffine}));
  ASSERT_GE(c.plan.stages.size(), 2u) << c.plan.describe();
  for (pipeline::Stage& stage : c.plan.stages)
    stage.parallel = true;
  const fuzz::InvariantReport report = fuzz::checkPlan(c.plan);
  EXPECT_FALSE(report.ok()) << "two parallel stages must be illegal";
}

TEST(FuzzInvariants, RejectsReplicatedSideEffects) {
  CompiledLoop c =
      compileSpec(specWithOps({BodyOp::Reduction, BodyOp::StoreAffine}));
  const int parallelIdx = c.plan.parallelStageIndex();
  ASSERT_GE(parallelIdx, 0) << c.plan.describe();
  ASSERT_FALSE(c.plan.stages[parallelIdx].sccIds.empty());
  // Claim the store-carrying parallel SCC is replicated: illegal twice over
  // (side effects replicated, and the SCC now appears in two places).
  c.plan.replicatedSccs.push_back(c.plan.stages[parallelIdx].sccIds.front());
  const fuzz::InvariantReport report = fuzz::checkPlan(c.plan);
  EXPECT_FALSE(report.ok());
}

TEST(FuzzInvariants, RejectsCorruptChannelEndpoints) {
  CompiledLoop c =
      compileSpec(specWithOps({BodyOp::Reduction, BodyOp::StoreAffine}));
  ASSERT_FALSE(c.pm.channels.empty());
  c.pm.channels.front().producerStage = 99;
  const fuzz::InvariantReport report = fuzz::checkPipelineModule(c.pm);
  EXPECT_FALSE(report.ok());
}

TEST(FuzzInvariants, RejectsTamperedSimCounters) {
  CompiledLoop c =
      compileSpec(specWithOps({BodyOp::Reduction, BodyOp::StoreAffine}));
  const LoopSpec spec = specWithOps({BodyOp::Reduction, BodyOp::StoreAffine});
  fuzz::FuzzWorkload work = fuzz::buildWorkload(spec);
  const sim::SystemConfig config;
  sim::SimResult result =
      sim::simulateSystem(c.pm, *work.memory, work.args, config);

  const fuzz::InvariantReport clean = fuzz::checkSimResult(c.pm, result, config);
  ASSERT_TRUE(clean.ok()) << clean.summary();

  // A lost pop (push/pop imbalance) must be flagged.
  sim::SimResult tampered = result;
  tampered.fifoPops += 1;
  EXPECT_FALSE(fuzz::checkSimResult(c.pm, tampered, config).ok());

  // An occupancy high-water mark above the configured capacity means the
  // simulated FIFO overflowed.
  tampered = result;
  ASSERT_FALSE(tampered.channelStats.empty());
  tampered.channelStats.front().maxOccupancyFlits = config.fifoDepth * 3;
  EXPECT_FALSE(fuzz::checkSimResult(c.pm, tampered, config).ok());

  // Engine accounting: claiming fewer spawned engines than tasks.
  tampered = result;
  tampered.enginesSpawned = 0;
  tampered.engines.clear();
  EXPECT_FALSE(fuzz::checkSimResult(c.pm, tampered, config).ok());
}

// ---------------------------------------------------------------------------
// Shrinker.

TEST(FuzzShrink, MinimizesToThePredicateCore) {
  LoopSpec failing = specWithOps({BodyOp::StoreAffine, BodyOp::GatherStore,
                                  BodyOp::Reduction, BodyOp::CondStore},
                                 37);
  failing.wideInduction = true;
  // Artificial failure: "any spec containing a Reduction op".
  const auto predicate = [](const LoopSpec& spec) {
    return std::find(spec.ops.begin(), spec.ops.end(), BodyOp::Reduction) !=
           spec.ops.end();
  };
  ASSERT_TRUE(predicate(failing));
  const fuzz::ShrinkResult result = fuzz::shrinkSpec(failing, predicate);
  EXPECT_TRUE(predicate(result.spec)) << "shrinking must preserve failure";
  EXPECT_EQ(result.spec.ops.size(), 1u);
  EXPECT_EQ(result.spec.ops.front(), BodyOp::Reduction);
  EXPECT_LE(result.spec.tripCount, 2);
  EXPECT_FALSE(result.spec.wideInduction);
  EXPECT_GT(result.reductions, 0);
  EXPECT_GT(result.attempts, result.reductions);
}

TEST(FuzzShrink, KeepsListStyleWhenListPayloadIsTheFailure) {
  LoopSpec failing;
  failing.style = fuzz::IterStyle::ListWalk;
  failing.tripCount = 24;
  failing.ops = {BodyOp::ListPayload, BodyOp::Reduction};
  const auto predicate = [](const LoopSpec& spec) {
    return std::find(spec.ops.begin(), spec.ops.end(), BodyOp::ListPayload) !=
           spec.ops.end();
  };
  const fuzz::ShrinkResult result = fuzz::shrinkSpec(failing, predicate);
  EXPECT_TRUE(predicate(result.spec));
  // ListPayload requires the list walk; the style mutation must not have
  // produced a spec that drops it.
  EXPECT_EQ(result.spec.style, fuzz::IterStyle::ListWalk);
  EXPECT_EQ(ir::verifyModule(*fuzz::buildLoop(result.spec).module), "");
}

// ---------------------------------------------------------------------------
// Checked-in corpus: every stored regression case must replay clean.

TEST(FuzzCorpus, CheckedInCorpusReplaysClean) {
  const std::vector<std::string> files = fuzz::listCorpusFiles(CGPA_CORPUS_DIR);
  ASSERT_GE(files.size(), 3u) << "expected shrunk cases in tests/corpus/";
  for (const std::string& path : files) {
    std::string error;
    const auto spec = fuzz::readCorpusSpec(path, &error);
    ASSERT_TRUE(spec.has_value()) << path << ": " << error;
    const fuzz::OracleReport report = fuzz::runOracle(*spec);
    EXPECT_TRUE(report.ok) << path << "\n" << report.summary();
  }
}

} // namespace
} // namespace cgpa
