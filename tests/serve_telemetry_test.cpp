// Live-telemetry tests for the cgpad service layer: the per-job phase
// ledger (conservation, trace:true gating, byte-identity of untraced
// responses), the latency-histogram registry (bucket geometry, drained
// snapshot equalities under concurrency, the slow-job ring), and the
// read-only HTTP observer (all four endpoints, shutdown health flips,
// and clean rejection of protocol confusion in both directions).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/corpus.hpp"
#include "serve/executor.hpp"
#include "serve/framing.hpp"
#include "serve/job.hpp"
#include "serve/job_trace.hpp"
#include "serve/server.hpp"
#include "serve/service_metrics.hpp"
#include "trace/json.hpp"

namespace cgpa {
namespace {

// --- Helpers. --------------------------------------------------------------

std::vector<std::string> allCorpusSpecLines() {
  std::vector<std::string> lines;
  for (const std::string& file : fuzz::listCorpusFiles(CGPA_CORPUS_DIR)) {
    std::string error;
    const std::optional<fuzz::LoopSpec> spec =
        fuzz::readCorpusSpec(file, &error);
    EXPECT_TRUE(spec.has_value()) << file << ": " << error;
    if (spec.has_value())
      lines.push_back(fuzz::serializeSpec(*spec));
  }
  EXPECT_FALSE(lines.empty()) << "corpus is empty";
  return lines;
}

serve::JobRequest kernelJob(const std::string& kernel,
                            const std::string& id) {
  serve::JobRequest job;
  job.id = trace::JsonValue(id);
  job.kernel = kernel;
  return job;
}

serve::JobRequest specJob(const std::string& spec, const std::string& id) {
  serve::JobRequest job;
  job.id = trace::JsonValue(id);
  job.spec = spec;
  job.workers = 2;
  return job;
}

/// dump(0) with the volatile fields removed: `trace` (request-gated) and
/// `cacheHit` (warmth-dependent). What remains must be byte-stable.
std::string stripped(const trace::JsonValue& response) {
  trace::JsonValue copy = trace::JsonValue::object();
  for (const auto& [key, value] : response.members())
    if (key != "trace" && key != "cacheHit")
      copy.set(key, value);
  return copy.dump(0);
}

/// Assert `doc` is a conserved cgpa.jobtrace.v1 ledger; returns the
/// phases object for further inspection.
const trace::JsonValue* expectConservedTrace(const trace::JsonValue& doc,
                                             const std::string& context) {
  EXPECT_EQ(doc.find("schema")->asString(), "cgpa.jobtrace.v1") << context;
  const trace::JsonValue* phases = doc.find("phases");
  EXPECT_NE(phases, nullptr) << context;
  if (phases == nullptr)
    return nullptr;
  EXPECT_EQ(phases->members().size(), serve::kJobPhaseCount) << context;
  std::uint64_t sum = 0;
  for (const auto& [name, nanos] : phases->members()) {
    EXPECT_TRUE(nanos.isNumber()) << context << ": phase " << name;
    sum += nanos.asUint();
  }
  EXPECT_EQ(doc.find("endToEndNanos")->asUint(), sum)
      << context << ": ledger not conserved";
  return phases;
}

// --- Phase ledger: conservation and gating. --------------------------------

TEST(TelemetryTrace, LedgerConservedOnEveryCorpusSpecAndBothBackends) {
  std::size_t index = 0;
  for (const std::string& spec : allCorpusSpecLines()) {
    for (const sim::SimBackend backend :
         {sim::SimBackend::Interp, sim::SimBackend::Threaded}) {
      serve::JobRequest job =
          specJob(spec, "ledger-" + std::to_string(index));
      job.trace = true;
      job.backend = backend;
      const Expected<trace::JsonValue> response = serve::runJobDirect(job);
      ASSERT_TRUE(response.ok()) << response.status().message();
      ASSERT_TRUE(response->find("ok")->asBool()) << response->dump(0);
      const trace::JsonValue* doc = response->find("trace");
      ASSERT_NE(doc, nullptr) << "trace:true response carries no ledger";
      const std::string context = "spec " + std::to_string(index);
      const trace::JsonValue* phases = expectConservedTrace(*doc, context);
      ASSERT_NE(phases, nullptr);
      // The simulator really ran, and a cold compile really happened.
      EXPECT_GT(phases->find("simulate")->asUint(), 0u) << context;
      EXPECT_GT(phases->find("compile")->asUint(), 0u) << context;
    }
    ++index;
  }
}

TEST(TelemetryTrace, UntracedResponsesAreByteIdenticalToTracedOnes) {
  serve::Server server({.workers = 2, .cacheEntries = 8});
  serve::JobRequest plain = kernelJob("em3d", "t");
  serve::JobRequest traced = plain;
  traced.trace = true;

  const trace::JsonValue off = server.submit(plain);
  const trace::JsonValue on = server.submit(traced);
  ASSERT_TRUE(off.find("ok")->asBool()) << off.dump(0);
  // Gating: no trace key unless the request asked for one (this is what
  // keeps served responses byte-identical to the cgpac goldens).
  EXPECT_EQ(off.find("trace"), nullptr);
  ASSERT_NE(on.find("trace"), nullptr);
  EXPECT_EQ(stripped(off), stripped(on));

  // The library path must gate identically.
  const Expected<trace::JsonValue> directOff = serve::runJobDirect(plain);
  const Expected<trace::JsonValue> directOn = serve::runJobDirect(traced);
  ASSERT_TRUE(directOff.ok() && directOn.ok());
  EXPECT_EQ(directOff->find("trace"), nullptr);
  ASSERT_NE(directOn->find("trace"), nullptr);
  EXPECT_EQ(stripped(*directOff), stripped(*directOn));
  server.wait();
}

TEST(TelemetryTrace, FailedJobsStillCarryAConservedLedger) {
  serve::Server server({.workers = 1, .cacheEntries = 4});
  serve::JobRequest job = kernelJob("no-such-kernel", "bad");
  job.trace = true;
  const trace::JsonValue response = server.submit(job);
  EXPECT_FALSE(response.find("ok")->asBool());
  const trace::JsonValue* doc = response.find("trace");
  ASSERT_NE(doc, nullptr) << "failure responses must honor trace:true too";
  expectConservedTrace(*doc, "failed job");
  server.wait();
}

// --- Histogram geometry. ---------------------------------------------------

TEST(TelemetryHistogram, BucketPlacementAndDerivedQuantiles) {
  serve::LatencyHistogram hist;
  // Boundaries are 1µs·2^i: 999ns lands below the first boundary, 1000ns
  // at it, and anything past the last boundary in the overflow bucket.
  hist.record(999);
  hist.record(1000);
  hist.record(1999);
  hist.record(serve::LatencyHistogram::boundaryNanos(
                  serve::LatencyHistogram::kBoundaryCount - 1) +
              1);
  const serve::LatencyHistogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[serve::LatencyHistogram::kBucketCount - 1], 1u);
  std::uint64_t sum = 0;
  for (const std::uint64_t bucket : snap.buckets)
    sum += bucket;
  EXPECT_EQ(snap.count, sum) << "count must be the bucket sum";
  EXPECT_EQ(snap.count, 4u);
  EXPECT_LE(snap.p50Nanos, snap.p90Nanos);
  EXPECT_LE(snap.p90Nanos, snap.p99Nanos);
  // Quantiles stay finite even when the tail sits in the overflow bucket.
  EXPECT_GE(snap.p99Nanos, 0.0);
}

// --- Registry: drained snapshots balance under concurrency. ----------------

TEST(TelemetryMetrics, DrainedSnapshotsBalanceUnderConcurrency) {
  const std::string spec = allCorpusSpecLines()[0];
  serve::Server server({.workers = 4, .cacheEntries = 8});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3;
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    clients.emplace_back([&server, &spec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Cycle kernel / spec / failing so all three classes fill.
        const int shape = (t + i) % 3;
        serve::JobRequest job =
            shape == 0   ? kernelJob("em3d", "m")
            : shape == 1 ? specJob(spec, "m")
                         : kernelJob("no-such-kernel", "m");
        server.submit(std::move(job));
      }
    });
  for (std::thread& client : clients)
    client.join();
  server.wait();

  const trace::JsonValue stats = server.serverStatsJson();
  const trace::JsonValue* jobs = stats.find("jobs");
  ASSERT_NE(jobs, nullptr);
  const std::uint64_t completed = jobs->find("completed")->asUint();
  const std::uint64_t failed = jobs->find("failed")->asUint();
  EXPECT_EQ(completed + failed,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(failed, 0u) << "the failing shape never ran";
  EXPECT_EQ(jobs->find("inflight")->asUint(), 0u);
  EXPECT_GT(stats.find("uptimeSeconds")->asDouble(), 0.0);

  // Drained-snapshot equalities: end-to-end class histograms tally the
  // job ledger exactly (this is the invariant trace_check re-checks on
  // every --serverstats document).
  const std::uint64_t kernelCount =
      server.metrics().classSnapshot(serve::JobClass::Kernel).count;
  const std::uint64_t specCount =
      server.metrics().classSnapshot(serve::JobClass::Spec).count;
  const std::uint64_t failedCount =
      server.metrics().classSnapshot(serve::JobClass::Failed).count;
  EXPECT_EQ(kernelCount + specCount, completed);
  EXPECT_EQ(failedCount, failed);
  // Every job passed through the queue and the simulator at least once.
  EXPECT_EQ(server.metrics().phaseSnapshot(serve::JobPhase::QueueWait).count,
            completed + failed);
  EXPECT_EQ(server.metrics().phaseSnapshot(serve::JobPhase::Simulate).count,
            completed);
}

TEST(TelemetryMetrics, SlowJobRingIsBoundedSortedAndParseable) {
  const std::string spec = allCorpusSpecLines()[0];
  serve::Server server(
      {.workers = 2, .cacheEntries = 8, .slowJobRing = 3});
  for (int i = 0; i < 8; ++i) {
    std::string id = "s";
    id += std::to_string(i);
    server.submit(i % 2 == 0 ? kernelJob("em3d", id) : specJob(spec, id));
  }
  server.wait();

  const std::string jsonl = server.slowJobsJsonl();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    lines.push_back(jsonl.substr(start, end - start));
    if (end == std::string::npos)
      break;
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 3u) << "ring must hold exactly its capacity";
  std::uint64_t previous = ~0ull;
  for (const std::string& line : lines) {
    const std::optional<trace::JsonValue> doc = trace::parseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    expectConservedTrace(*doc, "slow-job line");
    // Context fields ride along without breaking jobtrace validation.
    EXPECT_NE(doc->find("id"), nullptr);
    EXPECT_NE(doc->find("what"), nullptr);
    EXPECT_TRUE(doc->find("ok")->asBool());
    const std::uint64_t nanos = doc->find("endToEndNanos")->asUint();
    EXPECT_LE(nanos, previous) << "ring not sorted slowest-first";
    previous = nanos;
  }
}

// --- HTTP observer. --------------------------------------------------------

int connectTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << std::strerror(errno);
  return fd;
}

/// Write `request` to `port` and read the whole response (the observer
/// always closes the connection after one exchange).
std::string httpExchange(int port, const std::string& request) {
  const int fd = connectTcp(port);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0)
      break; // A clean early close (431 on oversized input) is expected.
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0)
      break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string httpBody(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

TEST(TelemetryHttp, ObserverServesAllEndpointsAndFlipsHealthOnShutdown) {
  serve::Server server({.workers = 2, .cacheEntries = 8});
  int port = 0;
  ASSERT_TRUE(server.listenHttp(0, &port).ok());
  ASSERT_GT(port, 0);
  server.submit(kernelJob("em3d", "h"));

  const std::string health =
      httpExchange(port, "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(health.substr(0, 15), "HTTP/1.0 200 OK") << health;
  EXPECT_EQ(httpBody(health), "ok\n");

  const std::string metrics =
      httpExchange(port, "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(metrics.substr(0, 15), "HTTP/1.0 200 OK");
  const std::string exposition = httpBody(metrics);
  for (const char* needle :
       {"cgpad_jobs_accepted_total 1", "cgpad_jobs_inflight 0",
        "cgpad_job_phase_seconds_bucket{phase=\"simulate\"",
        "cgpad_job_latency_seconds_bucket{class=\"kernel\"",
        "cgpad_job_latency_seconds_count{class=\"kernel\"} 1"})
    EXPECT_NE(exposition.find(needle), std::string::npos) << needle;

  const std::string stats = httpExchange(port, "GET /stats HTTP/1.0\r\n\r\n");
  const std::optional<trace::JsonValue> statsDoc =
      trace::parseJson(httpBody(stats));
  ASSERT_TRUE(statsDoc.has_value()) << stats;
  EXPECT_EQ(statsDoc->find("schema")->asString(), "cgpa.serverstats.v1");
  EXPECT_EQ(statsDoc->find("jobs")->find("completed")->asUint(), 1u);

  const std::string slow = httpExchange(port, "GET /slowjobs HTTP/1.0\r\n\r\n");
  const std::string body = httpBody(slow);
  const std::optional<trace::JsonValue> slowDoc =
      trace::parseJson(body.substr(0, body.find('\n')));
  ASSERT_TRUE(slowDoc.has_value()) << body;
  expectConservedTrace(*slowDoc, "/slowjobs line");

  EXPECT_EQ(httpExchange(port, "GET /nope HTTP/1.0\r\n\r\n").substr(0, 12),
            "HTTP/1.0 404");

  // The observer outlives requestShutdown() so health checks see the
  // drain: /healthz must answer 503 while the server winds down.
  server.requestShutdown();
  const std::string draining =
      httpExchange(port, "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(draining.substr(0, 12), "HTTP/1.0 503") << draining;
  server.wait();
}

TEST(TelemetryHttp, ProtocolConfusionIsRejectedCleanlyBothWays) {
  serve::Server server({.workers = 2, .cacheEntries = 8});
  int metricsPort = 0;
  int jobPort = 0;
  ASSERT_TRUE(server.listenHttp(0, &metricsPort).ok());
  ASSERT_TRUE(server.listenTcp(0, &jobPort).ok());

  // A JSONL job frame at the metrics port: rejected as 400 immediately
  // (no waiting for a blank line that will never come), never hangs.
  const std::string jsonl = httpExchange(
      metricsPort, "{\"schema\":\"cgpa.job.v1\",\"id\":\"x\",\"op\":\"stats\"}\n");
  EXPECT_EQ(jsonl.substr(0, 12), "HTTP/1.0 400") << jsonl;

  // Oversized garbage with no request terminator: capped at 431.
  const std::string oversized =
      httpExchange(metricsPort, std::string(10000, 'x'));
  EXPECT_EQ(oversized.substr(0, 12), "HTTP/1.0 431") << oversized;

  // An HTTP request at the job port: each line answers with an inline
  // ok=false protocol error, the connection survives, and a real job
  // still succeeds afterwards on the same socket.
  const int fd = connectTcp(jobPort);
  const std::string get = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, get.data(), get.size(), 0),
            static_cast<ssize_t>(get.size()));
  ASSERT_TRUE(
      serve::writeFrame(
          fd, R"({"schema":"cgpa.job.v1","id":"after","kernel":"em3d"})")
          .ok());
  serve::FrameReader reader = serve::fdFrameReader(fd);
  bool sawProtocolError = false;
  for (;;) {
    const Expected<std::optional<std::string>> frame = reader.next();
    ASSERT_TRUE(frame.ok() && frame->has_value()) << "connection died";
    const std::optional<trace::JsonValue> doc = trace::parseJson(**frame);
    ASSERT_TRUE(doc.has_value()) << **frame;
    if (doc->find("id")->asString() == "after") {
      EXPECT_TRUE(doc->find("ok")->asBool()) << **frame;
      break;
    }
    sawProtocolError = true;
    EXPECT_FALSE(doc->find("ok")->asBool()) << **frame;
  }
  EXPECT_TRUE(sawProtocolError);
  ::close(fd);

  const trace::JsonValue stats = server.serverStatsJson();
  EXPECT_GE(stats.find("jobs")->find("protocolErrors")->asUint(), 1u);
  server.wait();
}

} // namespace
} // namespace cgpa
