// Cycle-count / functional-result regression pinning for the paper
// kernels.
//
// The simulator's performance work (dense slot-indexed register files,
// wakeup-driven scheduling) is required to be *bit-identical* in simulated
// behavior: same cycle counts, same return values, same instruction
// counts. These constants were recorded from the pre-optimization
// busy-poll/hash-map implementation on the default workloads (scale 1,
// seed 42, default SystemConfig) and must never drift — a change here is a
// change in modeled hardware behavior, not a speedup, and needs the same
// scrutiny as a schedule or timing-model change.
// Both execution tiers (the interpreting WorkerEngine and the threaded-
// code tier) run against the same recorded constants: the suite is
// instantiated once per backend, so a divergence names the tier that
// drifted.
#include "cgpa/driver.hpp"

#include <tuple>

#include <gtest/gtest.h>

namespace cgpa {
namespace {

struct RecordedKernel {
  const char* name;
  std::uint64_t p1Cycles;    ///< CGPA pipelined accelerator (Flow::CgpaP1).
  std::uint64_t legupCycles; ///< Sequential accelerator (Flow::Legup).
  std::uint64_t interpReturn;
  std::uint64_t interpInstructions;
};

// Table 2 kernels, in allKernels() order.
constexpr RecordedKernel kRecorded[] = {
    {"kmeans", 100538, 405313, 217, 312838},
    {"hash-indexing", 21349, 45854, 0, 47109},
    {"ks", 10444, 36864, 34911, 83596},
    {"em3d", 21360, 74246, 0, 53301},
    {"1d-gaussblur", 39645, 103613, 0, 97997},
};

class CycleRegressionTest
    : public ::testing::TestWithParam<
          std::tuple<RecordedKernel, sim::SimBackend>> {};

const kernels::Kernel* findKernel(const std::string& name) {
  for (const kernels::Kernel* kernel : kernels::allKernels())
    if (kernel->name() == name)
      return kernel;
  return nullptr;
}

TEST_P(CycleRegressionTest, SimCyclesMatchRecordedBaseline) {
  const RecordedKernel& recorded = std::get<0>(GetParam());
  const sim::SimBackend backend = std::get<1>(GetParam());
  const kernels::Kernel* kernel = findKernel(recorded.name);
  ASSERT_NE(kernel, nullptr) << recorded.name;

  sim::SystemConfig config;
  config.backend = backend;

  const driver::CompiledAccelerator p1 = driver::compileKernel(
      *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  kernels::Workload p1Work = kernel->buildWorkload(kernels::WorkloadConfig{});
  const sim::SimResult p1Result = sim::simulateSystem(
      p1.pipelineModule, *p1Work.memory, p1Work.args, config);
  EXPECT_EQ(p1Result.cycles, recorded.p1Cycles);
  EXPECT_EQ(p1Result.backend, backend);

  const driver::CompiledAccelerator seq = driver::compileKernel(
      *kernel, driver::Flow::Legup, driver::CompileOptions{});
  kernels::Workload seqWork =
      kernel->buildWorkload(kernels::WorkloadConfig{});
  const sim::SimResult seqResult = sim::simulateSystem(
      seq.pipelineModule, *seqWork.memory, seqWork.args, config);
  EXPECT_EQ(seqResult.cycles, recorded.legupCycles);
}

TEST_P(CycleRegressionTest, InterpreterMatchesRecordedBaseline) {
  const RecordedKernel& recorded = std::get<0>(GetParam());
  const kernels::Kernel* kernel = findKernel(recorded.name);
  ASSERT_NE(kernel, nullptr) << recorded.name;

  const auto module = kernel->buildModule();
  const ir::Function* fn = module->findFunction("kernel");
  ASSERT_NE(fn, nullptr);
  kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
  interp::Interpreter interpreter(*work.memory);
  interp::LiveoutFile liveouts;
  interpreter.setLiveoutFile(&liveouts);
  const interp::InterpResult result = interpreter.run(*fn, work.args);
  EXPECT_EQ(result.returnValue, recorded.interpReturn);
  EXPECT_EQ(result.instructionsExecuted, recorded.interpInstructions);
}

// Observability must be free: compiling with a remark collector attached
// records the compile's decisions but must not perturb the generated
// pipeline, so the simulated cycle count stays pinned to the recorded
// baseline.
TEST(CycleRegression, RemarksCollectionLeavesCyclesUnchanged) {
  const kernels::Kernel* kernel = findKernel("em3d");
  ASSERT_NE(kernel, nullptr);

  trace::RemarkCollector remarks;
  driver::CompileOptions options;
  options.remarks = &remarks;
  const driver::CompiledAccelerator accel =
      driver::compileKernel(*kernel, driver::Flow::CgpaP1, options);
  EXPECT_FALSE(remarks.empty());

  kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
  const sim::SimResult result = sim::simulateSystem(
      accel.pipelineModule, *work.memory, work.args, sim::SystemConfig{});
  EXPECT_EQ(result.cycles, 21360u);
}

// Full-SimResult bit-identity between the two execution tiers on every
// paper kernel: not just cycles, but every architectural counter the
// simulator reports. The backend tag is the one field allowed to differ.
TEST(CycleRegression, ThreadedTierBitIdenticalToInterp) {
  for (const kernels::Kernel* kernel : kernels::allKernels()) {
    SCOPED_TRACE(kernel->name());
    const driver::CompiledAccelerator accel = driver::compileKernel(
        *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});

    sim::SystemConfig interpConfig;
    interpConfig.backend = sim::SimBackend::Interp;
    kernels::Workload interpWork =
        kernel->buildWorkload(kernels::WorkloadConfig{});
    const sim::SimResult a = sim::simulateSystem(
        accel.pipelineModule, *interpWork.memory, interpWork.args,
        interpConfig);

    sim::SystemConfig threadedConfig;
    threadedConfig.backend = sim::SimBackend::Threaded;
    kernels::Workload threadedWork =
        kernel->buildWorkload(kernels::WorkloadConfig{});
    const sim::SimResult b = sim::simulateSystem(
        accel.pipelineModule, *threadedWork.memory, threadedWork.args,
        threadedConfig);

    EXPECT_EQ(a.backend, sim::SimBackend::Interp);
    EXPECT_EQ(b.backend, sim::SimBackend::Threaded);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.returnValue, b.returnValue);
    EXPECT_EQ(a.opCounts, b.opCounts);
    EXPECT_EQ(a.liveouts, b.liveouts);
    EXPECT_EQ(a.fifoPushes, b.fifoPushes);
    EXPECT_EQ(a.fifoPops, b.fifoPops);
    EXPECT_EQ(a.fifoMaxOccupancyFlits, b.fifoMaxOccupancyFlits);
    EXPECT_EQ(a.stallMem, b.stallMem);
    EXPECT_EQ(a.stallFifo, b.stallFifo);
    EXPECT_EQ(a.stallDep, b.stallDep);
    EXPECT_EQ(a.cyclesActive, b.cyclesActive);
    EXPECT_EQ(a.cyclesStalled, b.cyclesStalled);
    EXPECT_EQ(a.dynamicEnergyPj, b.dynamicEnergyPj);
    EXPECT_EQ(a.enginesSpawned, b.enginesSpawned);
    EXPECT_EQ(a.cache.accesses, b.cache.accesses);
    EXPECT_EQ(a.cache.hits, b.cache.hits);
    EXPECT_EQ(a.cache.misses, b.cache.misses);
    EXPECT_EQ(a.cache.bankRejects, b.cache.bankRejects);
    ASSERT_EQ(a.channelStats.size(), b.channelStats.size());
    for (std::size_t c = 0; c < a.channelStats.size(); ++c) {
      SCOPED_TRACE("channel " + std::to_string(c));
      EXPECT_EQ(a.channelStats[c].pushes, b.channelStats[c].pushes);
      EXPECT_EQ(a.channelStats[c].pops, b.channelStats[c].pops);
      EXPECT_EQ(a.channelStats[c].maxOccupancyFlits,
                b.channelStats[c].maxOccupancyFlits);
      EXPECT_EQ(a.channelStats[c].parkFull, b.channelStats[c].parkFull);
      EXPECT_EQ(a.channelStats[c].parkEmpty, b.channelStats[c].parkEmpty);
    }
    ASSERT_EQ(a.engines.size(), b.engines.size());
    for (std::size_t e = 0; e < a.engines.size(); ++e) {
      SCOPED_TRACE("engine " + std::to_string(e));
      EXPECT_EQ(a.engines[e].taskIndex, b.engines[e].taskIndex);
      EXPECT_EQ(a.engines[e].stageIndex, b.engines[e].stageIndex);
      EXPECT_EQ(a.engines[e].stats.opCounts, b.engines[e].stats.opCounts);
      EXPECT_EQ(a.engines[e].stats.stallMem, b.engines[e].stats.stallMem);
      EXPECT_EQ(a.engines[e].stats.stallFifo, b.engines[e].stats.stallFifo);
      EXPECT_EQ(a.engines[e].stats.stallDep, b.engines[e].stats.stallDep);
      EXPECT_EQ(a.engines[e].stats.cyclesActive,
                b.engines[e].stats.cyclesActive);
      EXPECT_EQ(a.engines[e].stats.cyclesStalled,
                b.engines[e].stats.cyclesStalled);
      EXPECT_EQ(a.engines[e].stats.dynamicEnergyPj,
                b.engines[e].stats.dynamicEnergyPj);
    }
    EXPECT_EQ(interpWork.memory->raw(), threadedWork.memory->raw());
  }
}

std::string recordedName(
    const ::testing::TestParamInfo<
        std::tuple<RecordedKernel, sim::SimBackend>>& info) {
  std::string name = std::get<0>(info.param).name;
  for (char& c : name)
    if (c == '-')
      c = '_';
  name += std::get<1>(info.param) == sim::SimBackend::Interp ? "_interp"
                                                             : "_threaded";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperKernels, CycleRegressionTest,
    ::testing::Combine(::testing::ValuesIn(kRecorded),
                       ::testing::Values(sim::SimBackend::Interp,
                                         sim::SimBackend::Threaded)),
    recordedName);

} // namespace
} // namespace cgpa
