// Cycle-count / functional-result regression pinning for the paper
// kernels.
//
// The simulator's performance work (dense slot-indexed register files,
// wakeup-driven scheduling) is required to be *bit-identical* in simulated
// behavior: same cycle counts, same return values, same instruction
// counts. These constants were recorded from the pre-optimization
// busy-poll/hash-map implementation on the default workloads (scale 1,
// seed 42, default SystemConfig) and must never drift — a change here is a
// change in modeled hardware behavior, not a speedup, and needs the same
// scrutiny as a schedule or timing-model change.
#include "cgpa/driver.hpp"

#include <gtest/gtest.h>

namespace cgpa {
namespace {

struct RecordedKernel {
  const char* name;
  std::uint64_t p1Cycles;    ///< CGPA pipelined accelerator (Flow::CgpaP1).
  std::uint64_t legupCycles; ///< Sequential accelerator (Flow::Legup).
  std::uint64_t interpReturn;
  std::uint64_t interpInstructions;
};

// Table 2 kernels, in allKernels() order.
constexpr RecordedKernel kRecorded[] = {
    {"kmeans", 100538, 405313, 217, 312838},
    {"hash-indexing", 21349, 45854, 0, 47109},
    {"ks", 10444, 36864, 34911, 83596},
    {"em3d", 21360, 74246, 0, 53301},
    {"1d-gaussblur", 39645, 103613, 0, 97997},
};

class CycleRegressionTest
    : public ::testing::TestWithParam<RecordedKernel> {};

const kernels::Kernel* findKernel(const std::string& name) {
  for (const kernels::Kernel* kernel : kernels::allKernels())
    if (kernel->name() == name)
      return kernel;
  return nullptr;
}

TEST_P(CycleRegressionTest, SimCyclesMatchRecordedBaseline) {
  const RecordedKernel& recorded = GetParam();
  const kernels::Kernel* kernel = findKernel(recorded.name);
  ASSERT_NE(kernel, nullptr) << recorded.name;

  const driver::CompiledAccelerator p1 = driver::compileKernel(
      *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  kernels::Workload p1Work = kernel->buildWorkload(kernels::WorkloadConfig{});
  const sim::SimResult p1Result = sim::simulateSystem(
      p1.pipelineModule, *p1Work.memory, p1Work.args, sim::SystemConfig{});
  EXPECT_EQ(p1Result.cycles, recorded.p1Cycles);

  const driver::CompiledAccelerator seq = driver::compileKernel(
      *kernel, driver::Flow::Legup, driver::CompileOptions{});
  kernels::Workload seqWork =
      kernel->buildWorkload(kernels::WorkloadConfig{});
  const sim::SimResult seqResult =
      sim::simulateSystem(seq.pipelineModule, *seqWork.memory, seqWork.args,
                          sim::SystemConfig{});
  EXPECT_EQ(seqResult.cycles, recorded.legupCycles);
}

TEST_P(CycleRegressionTest, InterpreterMatchesRecordedBaseline) {
  const RecordedKernel& recorded = GetParam();
  const kernels::Kernel* kernel = findKernel(recorded.name);
  ASSERT_NE(kernel, nullptr) << recorded.name;

  const auto module = kernel->buildModule();
  const ir::Function* fn = module->findFunction("kernel");
  ASSERT_NE(fn, nullptr);
  kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
  interp::Interpreter interpreter(*work.memory);
  interp::LiveoutFile liveouts;
  interpreter.setLiveoutFile(&liveouts);
  const interp::InterpResult result = interpreter.run(*fn, work.args);
  EXPECT_EQ(result.returnValue, recorded.interpReturn);
  EXPECT_EQ(result.instructionsExecuted, recorded.interpInstructions);
}

// Observability must be free: compiling with a remark collector attached
// records the compile's decisions but must not perturb the generated
// pipeline, so the simulated cycle count stays pinned to the recorded
// baseline.
TEST(CycleRegression, RemarksCollectionLeavesCyclesUnchanged) {
  const kernels::Kernel* kernel = findKernel("em3d");
  ASSERT_NE(kernel, nullptr);

  trace::RemarkCollector remarks;
  driver::CompileOptions options;
  options.remarks = &remarks;
  const driver::CompiledAccelerator accel =
      driver::compileKernel(*kernel, driver::Flow::CgpaP1, options);
  EXPECT_FALSE(remarks.empty());

  kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
  const sim::SimResult result = sim::simulateSystem(
      accel.pipelineModule, *work.memory, work.args, sim::SystemConfig{});
  EXPECT_EQ(result.cycles, 21360u);
}

std::string recordedName(
    const ::testing::TestParamInfo<RecordedKernel>& info) {
  std::string name = info.param.name;
  for (char& c : name)
    if (c == '-')
      c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(PaperKernels, CycleRegressionTest,
                         ::testing::ValuesIn(kRecorded), recordedName);

} // namespace
} // namespace cgpa
