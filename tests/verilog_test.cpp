#include "cgpa/driver.hpp"
#include "verilog/emitter.hpp"
#include "verilog/lint.hpp"
#include "verilog/testbench.hpp"

#include <gtest/gtest.h>

namespace cgpa::verilog {
namespace {

TEST(Lint, CleanFifoModule) {
  EXPECT_EQ(lintReport(emitFifoModule()), "");
}

TEST(Lint, CleanMemorySystem) {
  EXPECT_EQ(lintReport(emitMemorySystemModule()), "");
}

TEST(Lint, DetectsUndeclaredIdentifier) {
  const char* bad = R"(module m (input wire clk);
  always @(posedge clk) begin
    mystery <= 1'b1;
  end
endmodule
)";
  const auto issues = lintVerilog(bad);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("mystery"), std::string::npos);
}

TEST(Lint, DetectsUnbalancedModule) {
  const auto issues = lintVerilog("module m (input wire clk);\n");
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.back().message.find("module"), std::string::npos);
}

TEST(Lint, DetectsUnbalancedBeginEnd) {
  const char* bad = R"(module m (input wire clk);
  reg r;
  always @(posedge clk) begin
    begin
      r <= 1'b0;
    end
endmodule
)";
  const auto issues = lintVerilog(bad);
  EXPECT_FALSE(issues.empty());
}

TEST(Lint, AcceptsHierarchicalAndStrings) {
  const char* ok = R"(module tb;
  reg clk;
  initial begin
    $display("hello %0d", tb.clk);
    $finish;
  end
endmodule
)";
  EXPECT_EQ(lintReport(ok), "");
}

TEST(Emitter, SanitizeIdent) {
  EXPECT_EQ(sanitizeIdent("foo.bar"), "foo_bar");
  EXPECT_EQ(sanitizeIdent("1abc"), "v_1abc");
  EXPECT_EQ(sanitizeIdent("ok_name"), "ok_name");
}

class KernelVerilogTest
    : public ::testing::TestWithParam<const kernels::Kernel*> {};

TEST_P(KernelVerilogTest, EmitsLintCleanRtlAndTestbench) {
  const kernels::Kernel* kernel = GetParam();
  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});

  const std::string rtl = emitPipelineVerilog(
      accel.pipelineModule, hls::ScheduleOptions{}, VerilogOptions{});
  EXPECT_EQ(lintReport(rtl), "") << "RTL lint failed for " << kernel->name();

  // Structure: one module per task plus fifo, memsys, top.
  EXPECT_NE(rtl.find("module cgpa_fifo"), std::string::npos);
  EXPECT_NE(rtl.find("module cgpa_memsys"), std::string::npos);
  EXPECT_NE(rtl.find("module cgpa_top"), std::string::npos);
  for (const pipeline::TaskInfo& task : accel.pipelineModule.tasks)
    EXPECT_NE(rtl.find("module cgpa_" + sanitizeIdent(task.fn->name())),
              std::string::npos);

  // The parallel stage appears once per worker in the top level.
  const pipeline::TaskInfo* parallel = accel.pipelineModule.parallelTask();
  ASSERT_NE(parallel, nullptr);
  std::size_t count = 0;
  const std::string needle =
      "cgpa_" + sanitizeIdent(parallel->fn->name()) + " u_stage";
  for (std::size_t pos = rtl.find(needle); pos != std::string::npos;
       pos = rtl.find(needle, pos + 1))
    ++count;
  EXPECT_EQ(count, static_cast<std::size_t>(accel.pipelineModule.numWorkers));

  TestbenchOptions tbOptions;
  tbOptions.dumpBytes = 32;
  const std::string tb = emitTestbench(accel.pipelineModule, tbOptions);
  EXPECT_EQ(lintReport(rtl + "\n" + tb), "")
      << "testbench lint failed for " << kernel->name();
  EXPECT_NE(tb.find("cgpa_top dut"), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelVerilogTest,
    ::testing::ValuesIn(kernels::allKernels()),
    [](const ::testing::TestParamInfo<const kernels::Kernel*>& info) {
      std::string name = info.param->name();
      for (char& c : name)
        if (c == '-')
          c = '_';
      return name;
    });

} // namespace
} // namespace cgpa::verilog
