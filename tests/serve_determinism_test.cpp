// Server-vs-library determinism: the differential oracle for cgpad.
//
// Every checked-in corpus spec and the built-in kernels are run twice for
// each execution tier — once through the in-process serve::Server (worker
// pool, plan cache, reusable per-worker SystemSimulators) and once
// straight through the library path (serve::runJobDirect: fresh compile,
// one-shot simulateSystemChecked). The two cgpa.jobresult.v1 documents
// must be byte-identical modulo the cacheHit flag: same cycles, same
// engine/channel ledgers, same embedded cgpa.simstats.v1 (which is built
// by the same trace::buildStatsDocument the cgpac CLI uses — so this also
// pins server output == CLI output). A warm resubmission must flip
// cacheHit and change nothing else.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "serve/executor.hpp"
#include "serve/job.hpp"
#include "serve/server.hpp"
#include "sim/system.hpp"
#include "trace/json.hpp"

namespace cgpa {
namespace {

std::string normalized(const trace::JsonValue& response) {
  trace::JsonValue copy = response;
  if (copy.find("cacheHit") != nullptr)
    copy.set("cacheHit", false);
  return copy.dump(0);
}

/// Both tiers for one job shape: the cycle counts and full stats must be
/// identical across tiers except the stats "backend" tag, and within each
/// tier the server must match the library path byte-for-byte.
void checkShape(serve::Server& server, serve::JobRequest job,
                const std::string& label) {
  std::vector<std::uint64_t> tierCycles;
  for (const sim::SimBackend backend :
       {sim::SimBackend::Interp, sim::SimBackend::Threaded}) {
    job.backend = backend;
    const std::string tier =
        label + "/" + std::string(sim::toString(backend));

    Expected<trace::JsonValue> direct = serve::runJobDirect(job);
    ASSERT_TRUE(direct.ok()) << tier << ": " << direct.status().message();
    ASSERT_TRUE(direct->find("ok")->asBool()) << tier << ": "
                                              << direct->dump(0);
    EXPECT_TRUE(direct->find("correct")->asBool()) << tier;

    const trace::JsonValue served = server.submit(job);
    EXPECT_EQ(normalized(served), normalized(*direct))
        << tier << ": server response differs from the library path";

    // Warm rerun: cacheHit flips, nothing else moves.
    const trace::JsonValue warm = server.submit(job);
    EXPECT_TRUE(warm.find("cacheHit")->asBool()) << tier;
    EXPECT_EQ(normalized(warm), normalized(served)) << tier;

    tierCycles.push_back(direct->find("cycles")->asUint());
  }
  // The two execution tiers are bit-identical in architecture: same
  // cycle count (the full-ledger equivalence is pinned by the normalized
  // comparison above plus the fuzz oracle's tier-differential leg).
  ASSERT_EQ(tierCycles.size(), 2u);
  EXPECT_EQ(tierCycles[0], tierCycles[1])
      << label << ": interp and threaded tiers disagree";
}

TEST(ServeDeterminism, CorpusSpecsMatchLibraryPathOnBothTiers) {
  const std::vector<std::string> files =
      fuzz::listCorpusFiles(CGPA_CORPUS_DIR);
  ASSERT_GE(files.size(), 3u) << "expected specs in tests/corpus/";
  serve::Server server({.workers = 2, .cacheEntries = 16});
  for (const std::string& file : files) {
    std::string error;
    const std::optional<fuzz::LoopSpec> spec =
        fuzz::readCorpusSpec(file, &error);
    ASSERT_TRUE(spec.has_value()) << file << ": " << error;
    serve::JobRequest job;
    job.id = trace::JsonValue(file);
    job.spec = fuzz::serializeSpec(*spec);
    job.workers = 2;
    checkShape(server, job, file);
  }
  server.wait();
}

TEST(ServeDeterminism, KernelJobsMatchLibraryPathOnBothTiers) {
  serve::Server server({.workers = 2, .cacheEntries = 16});
  for (const char* kernel : {"em3d", "hash-indexing"}) {
    serve::JobRequest job;
    job.id = trace::JsonValue(kernel);
    job.kernel = kernel;
    checkShape(server, job, kernel);
  }
  server.wait();
}

TEST(ServeDeterminism, FlowVariantsShareNoCacheEntries) {
  // p1 and legup compile the same spec to different pipelines: the cache
  // must key them apart (different compileKey -> different irHash) and
  // each must still match its own library-path run.
  const std::vector<std::string> files =
      fuzz::listCorpusFiles(CGPA_CORPUS_DIR);
  ASSERT_FALSE(files.empty());
  std::string error;
  const std::optional<fuzz::LoopSpec> spec =
      fuzz::readCorpusSpec(files[0], &error);
  ASSERT_TRUE(spec.has_value()) << error;

  serve::Server server({.workers = 2, .cacheEntries = 16});
  std::vector<std::string> hashes;
  for (const char* flow : {"p1", "legup"}) {
    serve::JobRequest job;
    job.id = trace::JsonValue(flow);
    job.spec = fuzz::serializeSpec(*spec);
    job.workers = 2;
    job.flow = flow;
    Expected<trace::JsonValue> direct = serve::runJobDirect(job);
    ASSERT_TRUE(direct.ok()) << flow << ": " << direct.status().message();
    const trace::JsonValue served = server.submit(job);
    EXPECT_EQ(normalized(served), normalized(*direct)) << flow;
    hashes.push_back(served.find("irHash")->asString());
  }
  EXPECT_NE(hashes[0], hashes[1]);
  EXPECT_EQ(server.cacheStats().entries, 2u);
  server.wait();
}

} // namespace
} // namespace cgpa
