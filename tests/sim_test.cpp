#include "analysis/alias.hpp"
#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/pdg.hpp"
#include "analysis/scc.hpp"
#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/transform.hpp"
#include "sim/cache.hpp"
#include "sim/fifo.hpp"
#include "sim/mips.hpp"
#include "sim/system.hpp"

#include <gtest/gtest.h>

namespace cgpa::sim {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Instruction;
using ir::Type;

TEST(Fifo, PushPopAndCapacity) {
  FifoLane lane(4, 32);
  EXPECT_TRUE(lane.canPush(1));
  lane.push(7, 1);
  lane.push(8, 2); // 64-bit value: two flits.
  EXPECT_EQ(lane.occupiedFlits(), 3);
  EXPECT_TRUE(lane.canPush(1));
  EXPECT_FALSE(lane.canPush(2));
  EXPECT_EQ(lane.pop(), 7u);
  EXPECT_EQ(lane.pop(), 8u);
  EXPECT_FALSE(lane.canPop());
  EXPECT_EQ(lane.totalPushes(), 2u);
  EXPECT_EQ(lane.maxOccupancy(), 3);
}

TEST(Fifo, FlitsForTypes) {
  EXPECT_EQ(FifoLane::flitsFor(Type::I32, 32), 1);
  EXPECT_EQ(FifoLane::flitsFor(Type::Ptr, 32), 1);
  EXPECT_EQ(FifoLane::flitsFor(Type::F64, 32), 2);
  EXPECT_EQ(FifoLane::flitsFor(Type::I1, 32), 1);
  EXPECT_EQ(FifoLane::flitsFor(Type::F64, 64), 1);
}

TEST(Fifo, OccupancyAccountingAcrossDrain) {
  FifoLane lane(4, 32);
  lane.push(1, 2);
  lane.push(2, 2); // Full: 4 of 4 flits.
  EXPECT_FALSE(lane.canPush(1));
  EXPECT_EQ(lane.occupiedFlits(), 4);
  EXPECT_EQ(lane.pop(), 1u);
  EXPECT_EQ(lane.pop(), 2u);
  // Draining frees the flits but must not reset the high-water mark or the
  // push count.
  EXPECT_EQ(lane.occupiedFlits(), 0);
  EXPECT_FALSE(lane.canPop());
  EXPECT_EQ(lane.maxOccupancy(), 4);
  EXPECT_EQ(lane.totalPushes(), 2u);
  // Refill after drain: counters keep accumulating.
  lane.push(3, 1);
  EXPECT_EQ(lane.totalPushes(), 3u);
  EXPECT_EQ(lane.maxOccupancy(), 4); // High-water mark unchanged.
  EXPECT_EQ(lane.occupiedFlits(), 1);
}

TEST(Fifo, MixedFlitWidthsRespectCapacity) {
  FifoLane lane(3, 32);
  lane.push(10, 1);
  EXPECT_TRUE(lane.canPush(2));
  lane.push(11, 2);
  EXPECT_FALSE(lane.canPush(1)); // 3 of 3 flits occupied.
  EXPECT_EQ(lane.maxOccupancy(), 3);
  EXPECT_EQ(lane.pop(), 10u);
  EXPECT_TRUE(lane.canPush(1));  // One flit freed.
  EXPECT_FALSE(lane.canPush(2)); // The two-flit entry still queued.
}

TEST(Cache, HitAfterMiss) {
  CacheConfig config;
  DCache cache(config);
  cache.beginCycle(0);
  ASSERT_GE(cache.submit(0x1000, false), 0);
  EXPECT_EQ(cache.lastAcceptDoneAt(),
            static_cast<std::uint64_t>(config.hitLatency +
                                       config.missPenalty));
  EXPECT_EQ(cache.stats().misses, 1u);
  // The bank blocks for the whole miss.
  EXPECT_EQ(cache.nextAcceptCycle(0x1000),
            static_cast<std::uint64_t>(config.hitLatency +
                                       config.missPenalty));

  // Second access to the same line: hit, and the bank must be free again.
  cache.beginCycle(100);
  ASSERT_GE(cache.submit(0x1000 + 64, false), 0); // Same 128B block.
  EXPECT_EQ(cache.lastAcceptDoneAt(),
            100 + static_cast<std::uint64_t>(config.hitLatency));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, BankAcceptsOnePerCycle) {
  CacheConfig config;
  DCache cache(config);
  cache.beginCycle(0);
  const int t1 = cache.submit(0x2000, false);
  ASSERT_GE(t1, 0);
  // Same bank, same cycle: rejected; the port re-arms next cycle (the
  // first access's miss blocks the bank, so nextAcceptCycle reports the
  // miss completion).
  EXPECT_LT(cache.submit(0x2000 + 8, false), 0);
  EXPECT_EQ(cache.stats().bankRejects, 1u);
  EXPECT_EQ(cache.nextAcceptCycle(0x2000 + 8),
            static_cast<std::uint64_t>(config.hitLatency +
                                       config.missPenalty));
  // Different bank, same cycle: accepted.
  EXPECT_GE(cache.submit(0x2000 + static_cast<std::uint64_t>(config.blockBytes), false), 0);
}

TEST(Cache, DirectMappedConflict) {
  CacheConfig config;
  DCache cache(config);
  const std::uint64_t strideToSameSet =
      static_cast<std::uint64_t>(config.blockBytes) *
      static_cast<std::uint64_t>(config.lines);
  EXPECT_GT(cache.blockingAccess(0x4000, false), config.hitLatency); // Miss.
  EXPECT_EQ(cache.blockingAccess(0x4000, false), config.hitLatency); // Hit.
  // Evict by touching the conflicting line, then re-access: miss again.
  cache.blockingAccess(0x4000 + strideToSameSet, false);
  EXPECT_GT(cache.blockingAccess(0x4000, false), config.hitLatency);
}

// ---------------------------------------------------------------------------
// End-to-end system simulation on an em3d-like list-update kernel.
// ---------------------------------------------------------------------------

struct Compiled {
  std::unique_ptr<ir::Module> module;
  ir::Function* fn = nullptr;
  std::unique_ptr<analysis::DominatorTree> dom;
  std::unique_ptr<analysis::DominatorTree> postDom;
  std::unique_ptr<analysis::LoopInfo> loops;
  std::unique_ptr<analysis::AliasAnalysis> alias;
  std::unique_ptr<analysis::ControlDependence> cd;
  std::unique_ptr<analysis::Pdg> pdg;
  std::unique_ptr<analysis::SccGraph> sccs;
  analysis::Loop* loop = nullptr;

  void analyze() {
    dom = std::make_unique<analysis::DominatorTree>(*fn);
    postDom = std::make_unique<analysis::DominatorTree>(*fn, true);
    loops = std::make_unique<analysis::LoopInfo>(*fn, *dom);
    alias = std::make_unique<analysis::AliasAnalysis>(*fn, *module, *loops);
    cd = std::make_unique<analysis::ControlDependence>(*fn, *postDom);
    loop = loops->topLevelLoops().front();
    pdg = std::make_unique<analysis::Pdg>(*fn, *loop, *alias, *cd);
    sccs = std::make_unique<analysis::SccGraph>(
        *pdg, [](const Instruction*) { return 1.0; });
  }
};

/// List update with a heavier parallel section (three multiplies) so the
/// parallel stage dominates.
Compiled buildListKernel() {
  Compiled c;
  c.module = std::make_unique<ir::Module>("m");
  ir::Region* region =
      c.module->addRegion("nodes", ir::RegionShape::AcyclicList, 16);
  region->nextOffset = 8;
  c.fn = c.module->addFunction("kernel", Type::I32);
  ir::Argument* head = c.fn->addArgument(Type::Ptr, "head");
  head->setRegionId(region->id);
  auto* entry = c.fn->addBlock("entry");
  auto* header = c.fn->addBlock("header");
  auto* body = c.fn->addBlock("body");
  auto* exit = c.fn->addBlock("exit");
  IRBuilder b(c.module.get());
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* n = b.phi(Type::Ptr, "n");
  b.condBr(b.icmp(CmpPred::NE, n, b.nullPtr(), "live"), body, exit);
  b.setInsertPoint(body);
  auto* value = b.load(Type::F64, n, "value");
  auto* t1 = b.fmul(value, b.f64(0.5), "t1");
  auto* t2 = b.fmul(t1, t1, "t2");
  auto* t3 = b.fadd(t2, b.f64(1.0), "t3");
  b.store(t3, n);
  auto* nextAddr = b.gep(n, nullptr, 0, 8, "nextAddr");
  auto* next = b.load(Type::Ptr, nextAddr, "next");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret(b.i32(0));
  n->addIncoming(head, entry);
  n->addIncoming(next, body);
  EXPECT_EQ(ir::verifyModule(*c.module), "");
  c.analyze();
  return c;
}

std::uint64_t layoutList(interp::Memory& memory, int count) {
  std::uint64_t head = 0;
  for (int i = count - 1; i >= 0; --i) {
    const std::uint64_t node = memory.allocate(16, 8);
    memory.writeF64(node, 0.25 * i);
    memory.writePtr(node + 8, head);
    head = node;
  }
  return head;
}

TEST(System, PipelinedMatchesGoldenAndBeatsSequential) {
  constexpr int kNodes = 256;

  // Golden functional result.
  Compiled golden = buildListKernel();
  interp::Memory goldenMem(1 << 22);
  const std::uint64_t goldenHead = layoutList(goldenMem, kNodes);
  interp::Interpreter gi(goldenMem);
  const std::uint64_t goldenArgs[] = {goldenHead};
  gi.run(*golden.fn, goldenArgs);

  // Legup-style sequential accelerator.
  Compiled seq = buildListKernel();
  const pipeline::PipelinePlan seqPlan =
      pipeline::sequentialPlan(*seq.sccs, *seq.loop);
  const pipeline::PipelineModule seqPm =
      pipeline::transformLoop(*seq.fn, seqPlan, 0);
  ASSERT_EQ(ir::verifyModule(*seq.module), "");
  interp::Memory seqMem(1 << 22);
  const std::uint64_t seqHead = layoutList(seqMem, kNodes);
  const std::uint64_t seqArgs[] = {seqHead};
  const SimResult seqResult =
      simulateSystem(seqPm, seqMem, seqArgs, SystemConfig{});
  EXPECT_GT(seqResult.cycles, 0u);

  // CGPA pipelined accelerator.
  Compiled par = buildListKernel();
  const pipeline::PipelinePlan parPlan =
      pipeline::partitionLoop(*par.sccs, *par.loop, pipeline::PartitionOptions{});
  ASSERT_EQ(parPlan.shapeString(), "S-P");
  const pipeline::PipelineModule parPm =
      pipeline::transformLoop(*par.fn, parPlan, 0);
  ASSERT_EQ(ir::verifyModule(*par.module), "");
  interp::Memory parMem(1 << 22);
  const std::uint64_t parHead = layoutList(parMem, kNodes);
  const std::uint64_t parArgs[] = {parHead};
  const SimResult parResult =
      simulateSystem(parPm, parMem, parArgs, SystemConfig{});
  EXPECT_GT(parResult.cycles, 0u);
  EXPECT_EQ(parResult.enginesSpawned, 5); // 1 sequential + 4 workers.

  // Functional correctness of both simulations.
  std::uint64_t g = goldenHead;
  std::uint64_t s = seqHead;
  std::uint64_t p = parHead;
  while (g != 0) {
    EXPECT_DOUBLE_EQ(seqMem.readF64(s), goldenMem.readF64(g));
    EXPECT_DOUBLE_EQ(parMem.readF64(p), goldenMem.readF64(g));
    g = goldenMem.readPtr(g + 8);
    s = seqMem.readPtr(s + 8);
    p = parMem.readPtr(p + 8);
  }

  // Pipelining with 4 workers must be meaningfully faster.
  EXPECT_LT(parResult.cycles * 2, seqResult.cycles * 3); // >= 1.5x speedup.
}

TEST(System, MipsSlowestOfAll) {
  constexpr int kNodes = 256;
  Compiled mips = buildListKernel();
  interp::Memory mipsMem(1 << 22);
  const std::uint64_t mipsHead = layoutList(mipsMem, kNodes);
  const std::uint64_t mipsArgs[] = {mipsHead};
  const MipsResult mipsResult =
      runMipsModel(*mips.fn, mipsArgs, mipsMem, CacheConfig{});
  EXPECT_GT(mipsResult.cycles, 0u);

  Compiled seq = buildListKernel();
  const pipeline::PipelineModule seqPm = pipeline::transformLoop(
      *seq.fn, pipeline::sequentialPlan(*seq.sccs, *seq.loop), 0);
  interp::Memory seqMem(1 << 22);
  const std::uint64_t seqHead = layoutList(seqMem, kNodes);
  const std::uint64_t seqArgs[] = {seqHead};
  const SimResult seqResult =
      simulateSystem(seqPm, seqMem, seqArgs, SystemConfig{});

  // The sequential accelerator should outperform the software core
  // (multiple ops per state vs one instruction per cycle).
  EXPECT_LT(seqResult.cycles, mipsResult.cycles);
}

TEST(System, FifoDepthOneStillCorrect) {
  constexpr int kNodes = 64;
  Compiled golden = buildListKernel();
  interp::Memory goldenMem(1 << 22);
  const std::uint64_t goldenHead = layoutList(goldenMem, kNodes);
  interp::Interpreter gi(goldenMem);
  const std::uint64_t goldenArgs[] = {goldenHead};
  gi.run(*golden.fn, goldenArgs);

  Compiled par = buildListKernel();
  const pipeline::PipelineModule pm = pipeline::transformLoop(
      *par.fn,
      pipeline::partitionLoop(*par.sccs, *par.loop,
                              pipeline::PartitionOptions{}),
      0);
  interp::Memory mem(1 << 22);
  const std::uint64_t head = layoutList(mem, kNodes);
  SystemConfig config;
  config.fifoDepth = 2; // Minimum that fits one 64-bit flit pair.
  const std::uint64_t args[] = {head};
  const SimResult result = simulateSystem(pm, mem, args, config);
  EXPECT_GT(result.stallFifo, 0u); // Tiny FIFOs must cause backpressure.
  std::uint64_t g = goldenHead;
  std::uint64_t p = head;
  while (g != 0) {
    EXPECT_DOUBLE_EQ(mem.readF64(p), goldenMem.readF64(g));
    g = goldenMem.readPtr(g + 8);
    p = mem.readPtr(p + 8);
  }
}

TEST(System, PerEngineSummaries) {
  Compiled par = buildListKernel();
  const pipeline::PipelineModule pm = pipeline::transformLoop(
      *par.fn,
      pipeline::partitionLoop(*par.sccs, *par.loop,
                              pipeline::PartitionOptions{}),
      0);
  interp::Memory mem(1 << 22);
  const std::uint64_t head = layoutList(mem, 64);
  const std::uint64_t args[] = {head};
  const SimResult result = simulateSystem(pm, mem, args, SystemConfig{});

  // Wrapper + 1 sequential worker + 4 parallel workers.
  ASSERT_EQ(result.engines.size(), 6u);
  EXPECT_EQ(result.engines[0].taskIndex, -1); // Wrapper first.
  int stage0 = 0;
  int stage1 = 0;
  std::uint64_t parallelStores = 0;
  for (std::size_t e = 1; e < result.engines.size(); ++e) {
    if (result.engines[e].stageIndex == 0)
      ++stage0;
    if (result.engines[e].stageIndex == 1) {
      ++stage1;
      const auto it =
          result.engines[e].stats.opCounts.find(ir::Opcode::Store);
      if (it != result.engines[e].stats.opCounts.end())
        parallelStores += it->second;
    }
  }
  EXPECT_EQ(stage0, 1);
  EXPECT_EQ(stage1, 4);
  // The 64 node updates split across the four workers.
  EXPECT_EQ(parallelStores, 64u);
}

TEST(System, ChannelStatsAggregateLanes) {
  Compiled par = buildListKernel();
  const pipeline::PipelineModule pm = pipeline::transformLoop(
      *par.fn,
      pipeline::partitionLoop(*par.sccs, *par.loop,
                              pipeline::PartitionOptions{}),
      0);
  ChannelSet channels(pm, 16, 32);
  ASSERT_GT(channels.numChannels(), 0);
  ASSERT_GT(channels.lanesOf(0), 1); // Parallel consumer: one lane/worker.
  EXPECT_TRUE(channels.drained());

  const int flits = channels.flitsOf(0);
  channels.lane(0, 0).push(1, flits);
  channels.lane(0, 0).push(2, flits);
  channels.lane(0, 1).push(3, flits);
  EXPECT_FALSE(channels.drained());

  // channelStats sums pushes across lanes and takes the max high-water
  // mark over them.
  const ChannelSet::ChannelStats stats = channels.channelStats(0);
  EXPECT_EQ(stats.pushes, 3u);
  EXPECT_EQ(stats.maxOccupancyFlits, 2 * flits);
  EXPECT_EQ(channels.totalPushes(), 3u);

  channels.lane(0, 0).pop();
  channels.lane(0, 0).pop();
  channels.lane(0, 1).pop();
  EXPECT_TRUE(channels.drained());
  // Draining leaves the cumulative stats untouched.
  EXPECT_EQ(channels.channelStats(0).pushes, 3u);
  EXPECT_EQ(channels.channelStats(0).maxOccupancyFlits, 2 * flits);
}

TEST(System, StatsArePopulated) {
  Compiled par = buildListKernel();
  const pipeline::PipelineModule pm = pipeline::transformLoop(
      *par.fn,
      pipeline::partitionLoop(*par.sccs, *par.loop,
                              pipeline::PartitionOptions{}),
      0);
  interp::Memory mem(1 << 22);
  const std::uint64_t head = layoutList(mem, 128);
  const std::uint64_t args[] = {head};
  const SimResult result = simulateSystem(pm, mem, args, SystemConfig{});
  EXPECT_GT(result.cache.accesses, 0u);
  EXPECT_GT(result.fifoPushes, 0u);
  EXPECT_GT(result.dynamicEnergyPj, 0.0);
  EXPECT_GT(result.opCounts.at(ir::Opcode::Store), 0u);
  EXPECT_EQ(result.opCounts.at(ir::Opcode::Store), 128u);
  // Active/stalled split: both occur in a pipelined run. Every fully
  // stalled engine-cycle bumps a stall-reason counter too; the reasons can
  // exceed cyclesStalled because a cycle that issues something and then
  // blocks counts as active yet still records its stall reason.
  EXPECT_GT(result.cyclesActive, 0u);
  EXPECT_GT(result.cyclesStalled, 0u);
  EXPECT_GE(result.stallMem + result.stallFifo + result.stallDep,
            result.cyclesStalled);
}

} // namespace
} // namespace cgpa::sim
