#include "ir/builder.hpp"
#include "ir/module.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

#include <gtest/gtest.h>

namespace cgpa::ir {
namespace {

/// Builds: i32 @sum(i32 %n) { s = 0; for (i = 0; i < n; ++i) s += i; }
std::unique_ptr<Module> buildCountingLoop() {
  auto module = std::make_unique<Module>("counting");
  Function* fn = module->addFunction("sum", Type::I32);
  Argument* n = fn->addArgument(Type::I32, "n");

  BasicBlock* entry = fn->addBlock("entry");
  BasicBlock* header = fn->addBlock("header");
  BasicBlock* body = fn->addBlock("body");
  BasicBlock* exit = fn->addBlock("exit");

  IRBuilder b(module.get());
  b.setInsertPoint(entry);
  b.br(header);

  b.setInsertPoint(header);
  Instruction* i = b.phi(Type::I32, "i");
  Instruction* s = b.phi(Type::I32, "s");
  Value* cond = b.icmp(CmpPred::SLT, i, n, "cond");
  b.condBr(cond, body, exit);

  b.setInsertPoint(body);
  Value* s2 = b.add(s, i, "s2");
  Value* i2 = b.add(i, b.i32(1), "i2");
  b.br(header);

  b.setInsertPoint(exit);
  b.ret(s);

  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, body);
  s->addIncoming(b.i32(0), entry);
  s->addIncoming(s2, body);
  return module;
}

TEST(IrTypes, BitsAndBytes) {
  EXPECT_EQ(typeBits(Type::I1), 1);
  EXPECT_EQ(typeBits(Type::I32), 32);
  EXPECT_EQ(typeBits(Type::Ptr), 32); // 32-bit hardware pointers.
  EXPECT_EQ(typeBytes(Type::F64), 8);
  EXPECT_EQ(typeBytes(Type::Ptr), 4);
  EXPECT_TRUE(isFloatType(Type::F32));
  EXPECT_FALSE(isFloatType(Type::I64));
  EXPECT_TRUE(isIntType(Type::I1));
}

TEST(IrTypes, NameRoundTrip) {
  for (Type type : {Type::Void, Type::I1, Type::I32, Type::I64, Type::F32,
                    Type::F64, Type::Ptr})
    EXPECT_EQ(typeFromName(typeName(type)), type);
}

TEST(IrOpcodes, NameRoundTrip) {
  for (Opcode op : {Opcode::Add, Opcode::FMul, Opcode::Gep, Opcode::Phi,
                    Opcode::Produce, Opcode::ProduceBroadcast, Opcode::Consume,
                    Opcode::ParallelFork, Opcode::ParallelJoin,
                    Opcode::StoreLiveout, Opcode::RetrieveLiveout})
    EXPECT_EQ(opcodeFromName(opcodeName(op)), op);
}

TEST(IrOpcodes, SideEffectClassification) {
  EXPECT_TRUE(hasSideEffects(Opcode::Store));
  EXPECT_TRUE(hasSideEffects(Opcode::Produce));
  EXPECT_TRUE(hasSideEffects(Opcode::Consume));
  EXPECT_FALSE(hasSideEffects(Opcode::Load));
  EXPECT_FALSE(hasSideEffects(Opcode::Add));
  EXPECT_FALSE(hasSideEffects(Opcode::RetrieveLiveout));
}

TEST(IrModule, ConstantDeduplication) {
  Module module("m");
  EXPECT_EQ(module.constInt(Type::I32, 5), module.constInt(Type::I32, 5));
  EXPECT_NE(module.constInt(Type::I32, 5), module.constInt(Type::I64, 5));
  EXPECT_EQ(module.constFloat(Type::F64, 1.5),
            module.constFloat(Type::F64, 1.5));
  EXPECT_NE(module.constFloat(Type::F64, 0.0),
            module.constFloat(Type::F64, -0.0));
  EXPECT_EQ(module.nullPtr()->intValue(), 0);
}

TEST(IrModule, Regions) {
  Module module("m");
  Region* nodes = module.addRegion("nodes", RegionShape::AcyclicList, 40);
  nodes->nextOffset = 0;
  nodes->pointerFields.push_back({24, 1});
  Region* from = module.addRegion("from", RegionShape::AcyclicList, 40);
  EXPECT_EQ(nodes->id, 0);
  EXPECT_EQ(from->id, 1);
  EXPECT_EQ(module.findRegion("nodes"), module.region(0));
  EXPECT_EQ(module.region(0)->fieldAt(24)->targetRegion, 1);
  EXPECT_EQ(module.region(0)->fieldAt(8), nullptr);
}

TEST(IrFunction, UseScanning) {
  auto module = buildCountingLoop();
  Function* fn = module->findFunction("sum");
  ASSERT_NE(fn, nullptr);
  BasicBlock* header = fn->findBlock("header");
  ASSERT_NE(header, nullptr);
  Instruction* i = header->instruction(0);
  // %i is used by: cmp, add (s2), add (i2), and the phi itself (incoming).
  const auto users = fn->usersOf(i);
  EXPECT_EQ(users.size(), 3u);
}

TEST(IrFunction, PredecessorsAndSuccessors) {
  auto module = buildCountingLoop();
  Function* fn = module->findFunction("sum");
  BasicBlock* header = fn->findBlock("header");
  const auto preds = fn->predecessorsOf(header);
  EXPECT_EQ(preds.size(), 2u);
  EXPECT_EQ(header->successors().size(), 2u);
}

TEST(IrVerifier, AcceptsWellFormed) {
  auto module = buildCountingLoop();
  EXPECT_EQ(verifyModule(*module), "");
}

TEST(IrVerifier, RejectsMissingTerminator) {
  Module module("m");
  Function* fn = module.addFunction("f", Type::Void);
  fn->addBlock("entry"); // Never terminated.
  IRBuilder b(&module);
  b.setInsertPoint(fn->entry());
  b.add(b.i32(1), b.i32(2), "x");
  EXPECT_NE(verifyFunction(*fn), "");
}

TEST(IrVerifier, RejectsUseBeforeDef) {
  Module module("m");
  Function* fn = module.addFunction("f", Type::I32);
  BasicBlock* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  // Manually build a use of a later-defined value.
  auto use = std::make_unique<Instruction>(Opcode::Add, Type::I32, "use");
  Instruction* useRaw = entry->append(std::move(use));
  Value* def = b.add(b.i32(1), b.i32(2), "def");
  useRaw->addOperand(def);
  useRaw->addOperand(def);
  b.ret(b.i32(0));
  EXPECT_NE(verifyFunction(*fn), "");
}

TEST(IrVerifier, RejectsPhiPredMismatch) {
  Module module("m");
  Function* fn = module.addFunction("f", Type::Void);
  BasicBlock* entry = fn->addBlock("entry");
  BasicBlock* next = fn->addBlock("next");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.br(next);
  b.setInsertPoint(next);
  Instruction* phi = b.phi(Type::I32, "p");
  phi->addIncoming(b.i32(1), next); // Wrong: pred is entry.
  b.ret();
  EXPECT_NE(verifyFunction(*fn), "");
}

TEST(IrVerifier, RejectsTypeMismatch) {
  Module module("m");
  Function* fn = module.addFunction("f", Type::Void);
  BasicBlock* entry = fn->addBlock("entry");
  auto bad = std::make_unique<Instruction>(Opcode::Add, Type::I32, "bad");
  bad->addOperand(module.constInt(Type::I32, 1));
  bad->addOperand(module.constInt(Type::I64, 1));
  entry->append(std::move(bad));
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.ret();
  EXPECT_NE(verifyFunction(*fn), "");
}

TEST(IrVerifier, RejectsDanglingBranchTarget) {
  Module module("m");
  Function* fn = module.addFunction("f", Type::Void);
  Function* other = module.addFunction("g", Type::Void);
  BasicBlock* foreign = other->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(foreign);
  b.ret();
  b.setInsertPoint(fn->addBlock("entry"));
  b.br(foreign); // Branch into a different function.
  const std::string err = verifyFunction(*fn);
  EXPECT_NE(err.find("dangling branch target"), std::string::npos) << err;
}

TEST(IrVerifier, RejectsNullOperand) {
  Module module("m");
  Function* fn = module.addFunction("f", Type::Void);
  BasicBlock* entry = fn->addBlock("entry");
  auto bad = std::make_unique<Instruction>(Opcode::Add, Type::I32, "bad");
  bad->addOperand(module.constInt(Type::I32, 1));
  bad->addOperand(nullptr);
  entry->append(std::move(bad));
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.ret();
  const std::string err = verifyFunction(*fn);
  EXPECT_NE(err.find("null operand 1"), std::string::npos) << err;
}

TEST(IrVerifier, RejectsPhiInEntryBlock) {
  Module module("m");
  Function* fn = module.addFunction("f", Type::Void);
  BasicBlock* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.phi(Type::I32, "p"); // Entry has no predecessors; a phi is nonsense.
  b.ret();
  const std::string err = verifyFunction(*fn);
  EXPECT_NE(err.find("phi in entry block"), std::string::npos) << err;
}

TEST(IrVerifier, RejectsSuccessorsOnNonBranch) {
  Module module("m");
  Function* fn = module.addFunction("f", Type::Void);
  BasicBlock* entry = fn->addBlock("entry");
  BasicBlock* next = fn->addBlock("next");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  Value* x = b.add(b.i32(1), b.i32(2), "x");
  asInstruction(x)->addSuccessor(next); // Corrupt the CFG edge list.
  b.br(next);
  b.setInsertPoint(next);
  b.ret();
  const std::string err = verifyFunction(*fn);
  EXPECT_NE(err.find("successors on non-branch"), std::string::npos) << err;
}

TEST(IrVerifier, RejectsBrokenParentLink) {
  Module module("m");
  Function* fn = module.addFunction("f", Type::Void);
  BasicBlock* entry = fn->addBlock("entry");
  BasicBlock* next = fn->addBlock("next");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  Value* x = b.add(b.i32(1), b.i32(2), "x");
  b.br(next);
  b.setInsertPoint(next);
  b.ret();
  asInstruction(x)->setParent(next); // Listed in entry, claims next.
  const std::string err = verifyFunction(*fn);
  EXPECT_NE(err.find("parent link broken"), std::string::npos) << err;
}

TEST(IrVerifier, RejectsNegativePrimitiveIds) {
  {
    Module module("m");
    Function* fn = module.addFunction("f", Type::Void);
    IRBuilder b(&module);
    b.setInsertPoint(fn->addBlock("entry"));
    b.produce(-1, b.i32(0), b.i32(7));
    b.ret();
    const std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("negative channel id"), std::string::npos) << err;
  }
  {
    Module module("m");
    Function* fn = module.addFunction("f", Type::Void);
    IRBuilder b(&module);
    b.setInsertPoint(fn->addBlock("entry"));
    b.storeLiveout(0, -2, b.i32(7));
    b.ret();
    const std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("negative loop/liveout id"), std::string::npos) << err;
  }
  {
    Module module("m");
    Function* fn = module.addFunction("f", Type::Void);
    IRBuilder b(&module);
    b.setInsertPoint(fn->addBlock("entry"));
    b.parallelFork(-3, 0, {});
    b.ret();
    const std::string err = verifyFunction(*fn);
    EXPECT_NE(err.find("negative loop/task id"), std::string::npos) << err;
  }
}

TEST(IrVerifier, AcceptsPrimitivesWithValidIds) {
  Module module("m");
  Function* fn = module.addFunction("f", Type::Void);
  IRBuilder b(&module);
  b.setInsertPoint(fn->addBlock("entry"));
  b.produce(0, b.i32(0), b.i32(7));
  b.storeLiveout(0, 0, b.i32(7));
  b.ret();
  EXPECT_EQ(verifyFunction(*fn), "");
}

TEST(IrPrinter, ContainsStructure) {
  auto module = buildCountingLoop();
  const std::string text = printModule(*module);
  EXPECT_NE(text.find("func @sum"), std::string::npos);
  EXPECT_NE(text.find("phi"), std::string::npos);
  EXPECT_NE(text.find("condbr"), std::string::npos);
  EXPECT_NE(text.find("-> %header"), std::string::npos);
}

TEST(IrParser, RoundTripCountingLoop) {
  auto module = buildCountingLoop();
  const std::string text = printModule(*module);
  ParseResult parsed = parseModule(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(verifyModule(*parsed.module), "");
  // Printing the reparsed module reproduces the text (fixed point).
  EXPECT_EQ(printModule(*parsed.module), text);
}

TEST(IrParser, RoundTripPrimitivesAndRegions) {
  Module module("prims");
  Region* region = module.addRegion("nodes", RegionShape::AcyclicList, 16);
  region->nextOffset = 8;
  region->pointerFields.push_back({4, 0});
  Function* fn = module.addFunction("task", Type::Void);
  Argument* arg = fn->addArgument(Type::Ptr, "p");
  arg->setRegionId(0);
  Argument* wid = fn->addArgument(Type::I32, "wid");
  BasicBlock* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  Value* got = b.consume(3, wid, Type::F64, "got");
  b.produce(2, wid, got);
  b.produceBroadcast(4, b.boolean(false));
  b.storeLiveout(0, 1, got);
  Value* lo = b.retrieveLiveout(0, 1, Type::F64, "lo");
  Value* neg = b.fsub(b.f64(0.0), lo, "neg");
  b.call(ir::Intrinsic::FAbs, Type::F64, {neg}, "absval");
  b.gep(arg, wid, 8, -16, "addr");
  b.ret();

  const std::string text = printModule(module);
  ParseResult parsed = parseModule(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(printModule(*parsed.module), text);
  const Region* reparsed = parsed.module->region(0);
  ASSERT_NE(reparsed, nullptr);
  EXPECT_EQ(reparsed->nextOffset, 8);
  ASSERT_EQ(reparsed->pointerFields.size(), 1u);
  EXPECT_EQ(reparsed->pointerFields[0].offset, 4);
}

TEST(IrParser, ReportsUnknownValue) {
  const char* text = R"(module "m"
func @f() -> void {
entry:
  %x:i32 = add %nope, 1:i32
  ret
}
)";
  ParseResult parsed = parseModule(text);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("unknown value"), std::string::npos);
}

TEST(IrParser, ReportsUnknownOpcode) {
  const char* text = R"(module "m"
func @f() -> void {
entry:
  frobnicate
}
)";
  ParseResult parsed = parseModule(text);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("unknown opcode"), std::string::npos);
}

TEST(IrParser, NegativeLiteralsParse) {
  const char* text = R"(module "m"
func @f() -> i32 {
entry:
  %x:i32 = add -5:i32, -7:i32
  ret %x
}
)";
  ParseResult parsed = parseModule(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const Function* fn = parsed.module->findFunction("f");
  const Instruction* add = fn->entry()->instruction(0);
  EXPECT_EQ(asConstant(add->operand(0))->intValue(), -5);
  EXPECT_EQ(asConstant(add->operand(1))->intValue(), -7);
}

TEST(IrInstruction, ReplaceUsesOfWith) {
  auto module = buildCountingLoop();
  Function* fn = module->findFunction("sum");
  BasicBlock* header = fn->findBlock("header");
  Instruction* i = header->instruction(0);
  Instruction* s = header->instruction(1);
  fn->replaceAllUsesWith(i, s);
  EXPECT_TRUE(fn->usersOf(i).empty());
}

} // namespace
} // namespace cgpa::ir
