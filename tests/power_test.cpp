#include "power/model.hpp"

#include <gtest/gtest.h>

namespace cgpa::power {
namespace {

hls::AreaReport makeArea(int aluts, int regs, int bramBits) {
  hls::AreaReport area;
  area.aluts = aluts;
  area.registers = regs;
  area.fifoBramBits = bramBits;
  return area;
}

TEST(PowerModel, StaticComponentsAdd) {
  PowerConfig config;
  const PowerReport report =
      estimateAcceleratorPower(makeArea(1000, 1000, 1000), 0.0, 200, config);
  EXPECT_DOUBLE_EQ(report.dynamicMw, 0.0);
  EXPECT_DOUBLE_EQ(report.staticMw,
                   config.baseMw + config.staticMwPerKAlut +
                       config.clockMwPerKAlut + config.clockMwPerKReg +
                       config.bramMwPerKbit);
  EXPECT_DOUBLE_EQ(report.totalMw, report.staticMw);
}

TEST(PowerModel, DynamicPowerFromActivity) {
  PowerConfig config;
  // 1e6 pJ dissipated over 200 cycles at 200 MHz = 1 us -> 1 uJ dynamic,
  // i.e. 1e6 pJ / 1 us = 1 W = 1000 mW.
  const PowerReport report =
      estimateAcceleratorPower(makeArea(0, 0, 0), 1e6, 200, config);
  EXPECT_NEAR(report.dynamicMw, 1000.0, 1e-9);
}

TEST(PowerModel, EnergyIsPowerTimesTime) {
  PowerConfig config;
  const hls::AreaReport area = makeArea(5000, 4000, 2048);
  const PowerReport report =
      estimateAcceleratorPower(area, 5e5, 2000, config);
  const double timeUs = 2000.0 / config.freqMHz;
  EXPECT_NEAR(report.energyUj, report.totalMw * timeUs / 1000.0, 1e-9);
}

TEST(PowerModel, MonotonicInArea) {
  PowerConfig config;
  const PowerReport small =
      estimateAcceleratorPower(makeArea(1000, 500, 512), 1e5, 1000, config);
  const PowerReport big =
      estimateAcceleratorPower(makeArea(4000, 2000, 2048), 1e5, 1000, config);
  EXPECT_GT(big.totalMw, small.totalMw);
  EXPECT_GT(big.energyUj, small.energyUj);
}

TEST(PowerModel, MipsEnergyLinearInCycles) {
  PowerConfig config;
  const double e1 = mipsEnergyUj(1000, config);
  const double e2 = mipsEnergyUj(2000, config);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-12);
  EXPECT_GT(e1, 0.0);
}

TEST(PowerModel, ZeroCyclesIsZeroEnergy) {
  PowerConfig config;
  const PowerReport report =
      estimateAcceleratorPower(makeArea(1000, 1000, 0), 0.0, 0, config);
  EXPECT_DOUBLE_EQ(report.energyUj, 0.0);
  EXPECT_DOUBLE_EQ(report.dynamicMw, 0.0);
}

} // namespace
} // namespace cgpa::power
