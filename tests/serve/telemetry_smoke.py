#!/usr/bin/env python3
"""telemetry-smoke driver: boot cgpad with the HTTP observer, replay the
committed job stream over TCP, and capture every telemetry surface for
trace_check validation.

Usage:
    telemetry_smoke.py --cgpad PATH --jobs JOBS.jsonl --out-prefix PREFIX

Spawns `cgpad --port 0 --metrics-port 0`, parses the two bound ports from
stdout, replays the job stream over the TCP job port (counting one
response per frame), then fetches all four observer endpoints over raw
sockets:

  /healthz   must answer 200 "ok" while serving
  /metrics   Prometheus text; spot-checked for the cgpad_* families
  /stats     written to PREFIX.serverstats.json (validated by trace_check)
  /slowjobs  written to PREFIX.slowjobs.jsonl (validated by trace_check)

The job responses are written to PREFIX.results.jsonl. After op=shutdown
the daemon must exit 0 on its own. Protocol-confusion probes ride along:
a JSONL frame at the metrics port must bounce as HTTP 400 without
hanging, and oversized junk as 431.

Stdlib only; exits non-zero with a message on any violation.
"""

import argparse
import json
import socket
import subprocess
import sys


def fail(message):
    sys.exit("telemetry_smoke: {}".format(message))


def http_exchange(port, request, timeout=10):
    """One raw HTTP/1.0 exchange; the observer closes after responding."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        s.sendall(request)
        chunks = []
        while True:
            data = s.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks)


def http_get(port, path):
    response = http_exchange(
        port, "GET {} HTTP/1.0\r\n\r\n".format(path).encode())
    head, _, body = response.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].decode(errors="replace")
    return status, body


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cgpad", required=True)
    parser.add_argument("--jobs", required=True)
    parser.add_argument("--out-prefix", required=True)
    args = parser.parse_args()

    daemon = subprocess.Popen(
        [args.cgpad, "--port", "0", "--metrics-port", "0", "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        ports = {}
        for _ in range(2):
            line = daemon.stdout.readline().strip()
            if line.startswith("cgpad: metrics on"):
                ports["metrics"] = int(line.rsplit(":", 1)[1])
            elif line.startswith("cgpad: listening on"):
                ports["jobs"] = int(line.rsplit(":", 1)[1])
        if set(ports) != {"metrics", "jobs"}:
            fail("did not announce both ports (got {})".format(ports))

        # Replay the committed job stream; every frame earns a response.
        frames = [line for line in open(args.jobs, encoding="utf-8")
                  if line.strip()]
        with socket.create_connection(("127.0.0.1", ports["jobs"]),
                                      timeout=60) as job_socket:
            stream = job_socket.makefile("rw", encoding="utf-8")
            for frame in frames:
                stream.write(frame if frame.endswith("\n") else frame + "\n")
            stream.flush()
            results = []
            for index in range(len(frames)):
                line = stream.readline()
                if not line:
                    fail("connection closed after {} of {} responses".format(
                        index, len(frames)))
                response = json.loads(line)
                if not response.get("ok", False):
                    fail("job {} failed: {}".format(
                        response.get("id"), line.strip()))
                results.append(line)
        with open(args.out_prefix + ".results.jsonl", "w",
                  encoding="utf-8") as out:
            out.writelines(results)

        # All four observer endpoints, live.
        status, body = http_get(ports["metrics"], "/healthz")
        if "200" not in status or body != b"ok\n":
            fail("/healthz answered {} {!r}".format(status, body))
        status, body = http_get(ports["metrics"], "/metrics")
        if "200" not in status:
            fail("/metrics answered {}".format(status))
        exposition = body.decode(errors="replace")
        for family in ("cgpad_jobs_accepted_total", "cgpad_jobs_inflight",
                       "cgpad_job_phase_seconds_bucket",
                       "cgpad_job_latency_seconds_count"):
            if family not in exposition:
                fail("/metrics is missing the {} family".format(family))
        status, body = http_get(ports["metrics"], "/stats")
        if "200" not in status:
            fail("/stats answered {}".format(status))
        stats = json.loads(body)
        if stats.get("schema") != "cgpa.serverstats.v1":
            fail("/stats schema is {}".format(stats.get("schema")))
        with open(args.out_prefix + ".serverstats.json", "wb") as out:
            out.write(body)
        status, body = http_get(ports["metrics"], "/slowjobs")
        if "200" not in status:
            fail("/slowjobs answered {}".format(status))
        if not body.strip():
            fail("/slowjobs is empty after a replayed batch")
        with open(args.out_prefix + ".slowjobs.jsonl", "wb") as out:
            out.write(body)

        # Protocol confusion at the metrics port: clean errors, no hangs.
        response = http_exchange(
            ports["metrics"],
            b'{"schema":"cgpa.job.v1","id":"x","op":"stats"}\n')
        if not response.startswith(b"HTTP/1.0 400"):
            fail("JSONL at the metrics port answered {!r}".format(
                response[:40]))
        response = http_exchange(ports["metrics"], b"x" * 10000)
        if not response.startswith(b"HTTP/1.0 431"):
            fail("oversized junk at the metrics port answered {!r}".format(
                response[:40]))

        # Clean shutdown through the wire protocol.
        with socket.create_connection(("127.0.0.1", ports["jobs"]),
                                      timeout=60) as job_socket:
            stream = job_socket.makefile("rw", encoding="utf-8")
            stream.write('{"schema":"cgpa.job.v1","id":"bye",'
                         '"op":"shutdown"}\n')
            stream.flush()
            response = json.loads(stream.readline())
            if not response.get("ok", False):
                fail("shutdown frame rejected: {}".format(response))
        if daemon.wait(timeout=60) != 0:
            fail("cgpad exited {}: {}".format(daemon.returncode,
                                              daemon.stderr.read()))
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    print("telemetry_smoke: ok ({} jobs, 4 endpoints)".format(len(frames)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
