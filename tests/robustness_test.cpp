// Robustness / edge-case coverage: degenerate workloads, configuration
// corners, live-outs from replicated sections, and scaled problem sizes.
//
// Every compiled accelerator here is additionally pushed through the
// fuzz::invariants layer (plan legality, pipeline structure, SDC schedule
// audit, FIFO conservation), so these edge cases guard the structural
// properties as well as the numerical results.
#include "cgpa/driver.hpp"
#include "fuzz/invariants.hpp"
#include "interp/eval.hpp"
#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "pipeline/functional_exec.hpp"
#include "pipeline/partition.hpp"

#include <gtest/gtest.h>

namespace cgpa {
namespace {

using ir::CmpPred;
using ir::Type;

/// Structural invariants of a compiled accelerator: partition legality,
/// transform output shape, and every SDC scheduling constraint.
void expectCompileInvariants(const driver::CompiledAccelerator& accel) {
  const fuzz::InvariantReport plan = fuzz::checkPlan(accel.plan);
  EXPECT_TRUE(plan.ok()) << plan.summary();
  const fuzz::InvariantReport module =
      fuzz::checkPipelineModule(accel.pipelineModule);
  EXPECT_TRUE(module.ok()) << module.summary();
  const fuzz::InvariantReport schedules =
      fuzz::checkSchedules(accel.pipelineModule, hls::ScheduleOptions{});
  EXPECT_TRUE(schedules.ok()) << schedules.summary();
}

/// Conservation laws of a finished cycle-level run.
void expectSimInvariants(const driver::CompiledAccelerator& accel,
                         const sim::SimResult& result,
                         const sim::SystemConfig& config) {
  const fuzz::InvariantReport report =
      fuzz::checkSimResult(accel.pipelineModule, result, config);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Robustness, EmptyListCycleSimulation) {
  // em3d with a null list head: zero loop iterations, but the full
  // fork/join/FIFO machinery still runs and must terminate cleanly.
  const kernels::Kernel* kernel = kernels::kernelByName("em3d");
  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  expectCompileInvariants(accel);
  interp::Memory memory(1 << 16);
  const std::uint64_t args[] = {0}; // Null head.
  const sim::SystemConfig config;
  const sim::SimResult result =
      sim::simulateSystem(accel.pipelineModule, memory, args, config);
  EXPECT_GT(result.cycles, 0u);
  EXPECT_LT(result.cycles, 500u); // Startup + drain only.
  expectSimInvariants(accel, result, config);
}

TEST(Robustness, SingleElementWorkloads) {
  // A one-node list exercises the "fewer iterations than workers" path:
  // three of the four workers only ever run their replica body.
  const kernels::Kernel* kernel = kernels::kernelByName("em3d");
  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  expectCompileInvariants(accel);

  interp::Memory memory(1 << 16);
  // One node: value 2.0, one from-node with coeff 0.5 and value 4.0.
  const std::uint64_t hnode = memory.allocate(24, 8);
  memory.writeF64(hnode, 4.0);
  const std::uint64_t fromArr = memory.allocate(4, 4);
  memory.writePtr(fromArr, hnode);
  const std::uint64_t coeffArr = memory.allocate(8, 8);
  memory.writeF64(coeffArr, 0.5);
  const std::uint64_t enode = memory.allocate(24, 8);
  memory.writeF64(enode, 2.0);
  memory.writeI32(enode + 8, 1);
  memory.writePtr(enode + 12, fromArr);
  memory.writePtr(enode + 16, coeffArr);
  memory.writePtr(enode + 20, 0);

  const std::uint64_t args[] = {enode};
  const sim::SystemConfig config;
  const sim::SimResult result =
      sim::simulateSystem(accel.pipelineModule, memory, args, config);
  EXPECT_GT(result.cycles, 0u);
  EXPECT_DOUBLE_EQ(memory.readF64(enode), 2.0 - 0.5 * 4.0);
  expectSimInvariants(accel, result, config);
}

TEST(Robustness, WideFifoConfiguration) {
  // 64-bit FIFOs: doubles fit in one flit. Correctness must not depend on
  // the flit split.
  const kernels::Kernel* kernel = kernels::kernelByName("1d-gaussblur");
  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  expectCompileInvariants(accel);
  kernels::Workload refWork = kernel->buildWorkload(kernels::WorkloadConfig{});
  kernel->runReference(*refWork.memory, refWork.args);

  kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
  sim::SystemConfig config;
  config.fifoWidthBits = 64;
  const sim::SimResult result = sim::simulateSystem(
      accel.pipelineModule, *work.memory, work.args, config);
  EXPECT_GT(result.cycles, 0u);
  EXPECT_EQ(work.memory->raw(), refWork.memory->raw());
  expectSimInvariants(accel, result, config);
}

TEST(Robustness, ScaledWorkloadStillCorrect) {
  const kernels::Kernel* kernel = kernels::kernelByName("hash-indexing");
  kernels::WorkloadConfig workloadConfig;
  workloadConfig.scale = 2; // 4096 records.
  kernels::Workload refWork = kernel->buildWorkload(workloadConfig);
  const std::uint64_t refReturn =
      kernel->runReference(*refWork.memory, refWork.args);

  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernel, driver::Flow::CgpaP1, driver::CompileOptions{});
  expectCompileInvariants(accel);
  kernels::Workload work = kernel->buildWorkload(workloadConfig);
  const sim::SystemConfig config;
  const sim::SimResult result = sim::simulateSystem(
      accel.pipelineModule, *work.memory, work.args, config);
  EXPECT_EQ(result.returnValue, refReturn);
  EXPECT_EQ(work.memory->raw(), refWork.memory->raw());
  expectSimInvariants(accel, result, config);
}

TEST(Robustness, LiveoutFromReplicatedSection) {
  // The final induction value is live out of the loop: the value is
  // computed by a *replicated* SCC, so every stage could store it; the
  // transform assigns it to the last stage.
  //   for (i = 0; i < n; ++i) A[i] = i;
  //   return i;   // == n
  ir::Module module("m");
  ir::Region* region = module.addRegion("A", ir::RegionShape::Array, 4);
  ir::Function* fn = module.addFunction("kernel", Type::I32);
  ir::Argument* a = fn->addArgument(Type::Ptr, "A");
  a->setRegionId(region->id);
  ir::Argument* n = fn->addArgument(Type::I32, "n");
  auto* entry = fn->addBlock("entry");
  auto* header = fn->addBlock("header");
  auto* body = fn->addBlock("body");
  auto* exit = fn->addBlock("exit");
  ir::IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* i = b.phi(Type::I32, "i");
  b.condBr(b.icmp(CmpPred::SLT, i, n, "c"), body, exit);
  b.setInsertPoint(body);
  auto* addr = b.gep(a, i, 4, 0, "addr");
  b.store(i, addr);
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret(i);
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, body);
  ASSERT_EQ(ir::verifyModule(module), "");

  analysis::DominatorTree dom(*fn);
  analysis::DominatorTree postDom(*fn, true);
  analysis::LoopInfo loops(*fn, dom);
  analysis::AliasAnalysis alias(*fn, module, loops);
  analysis::ControlDependence cd(*fn, postDom);
  analysis::Loop* loop = loops.topLevelLoops().front();
  analysis::Pdg pdg(*fn, *loop, alias, cd);
  analysis::SccGraph sccs(pdg, [](const ir::Instruction*) { return 1.0; });
  const pipeline::PipelinePlan plan =
      pipeline::partitionLoop(sccs, *loop, pipeline::PartitionOptions{});
  EXPECT_FALSE(plan.replicatedSccs.empty());
  const fuzz::InvariantReport planReport = fuzz::checkPlan(plan);
  EXPECT_TRUE(planReport.ok()) << planReport.summary();
  const pipeline::PipelineModule pm = pipeline::transformLoop(*fn, plan, 0);
  ASSERT_EQ(ir::verifyModule(module), "");
  ASSERT_EQ(pm.liveouts.size(), 1u);
  const fuzz::InvariantReport moduleReport = fuzz::checkPipelineModule(pm);
  EXPECT_TRUE(moduleReport.ok()) << moduleReport.summary();
  const fuzz::InvariantReport scheduleReport =
      fuzz::checkSchedules(pm, hls::ScheduleOptions{});
  EXPECT_TRUE(scheduleReport.ok()) << scheduleReport.summary();

  interp::Memory memory(1 << 16);
  const std::uint64_t base = memory.allocate(4 * 100, 4);
  const std::uint64_t args[] = {base, 100};
  const pipeline::FunctionalRunResult result =
      pipeline::runPipelineFunctional(pm, memory, args);
  EXPECT_EQ(interp::patternToInt(Type::I32, result.wrapperReturn), 100);
  for (int idx = 0; idx < 100; ++idx)
    EXPECT_EQ(memory.readI32(base + static_cast<std::uint64_t>(idx) * 4), idx);
}

TEST(Robustness, P2CorrectAcrossWorkerCounts) {
  const kernels::Kernel* kernel = kernels::kernelByName("em3d");
  for (int workers : {1, 2, 8}) {
    kernels::Workload refWork =
        kernel->buildWorkload(kernels::WorkloadConfig{});
    kernel->runReference(*refWork.memory, refWork.args);

    driver::CompileOptions compile;
    compile.partition.numWorkers = workers;
    const driver::CompiledAccelerator accel =
        driver::compileKernel(*kernel, driver::Flow::CgpaP2, compile);
    expectCompileInvariants(accel);
    kernels::Workload work = kernel->buildWorkload(kernels::WorkloadConfig{});
    const sim::SystemConfig config;
    const sim::SimResult result = sim::simulateSystem(
        accel.pipelineModule, *work.memory, work.args, config);
    EXPECT_EQ(work.memory->raw(), refWork.memory->raw())
        << "P2 workers=" << workers;
    expectSimInvariants(accel, result, config);
  }
}

} // namespace
} // namespace cgpa
