#include "cgpa/driver.hpp"
#include "interp/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

#include <gtest/gtest.h>

namespace cgpa::kernels {
namespace {

class KernelTest : public ::testing::TestWithParam<const Kernel*> {};

TEST_P(KernelTest, ModuleVerifies) {
  const Kernel* kernel = GetParam();
  auto module = kernel->buildModule();
  EXPECT_EQ(ir::verifyModule(*module), "") << ir::printModule(*module);
  EXPECT_NE(module->findFunction("kernel"), nullptr);
  EXPECT_NE(module->findFunction("kernel")->findBlock(
                kernel->targetLoopHeader()),
            nullptr);
}

TEST_P(KernelTest, InterpreterMatchesReference) {
  const Kernel* kernel = GetParam();
  auto module = kernel->buildModule();
  const ir::Function* fn = module->findFunction("kernel");

  WorkloadConfig config;
  Workload refWork = kernel->buildWorkload(config);
  const std::uint64_t refReturn =
      kernel->runReference(*refWork.memory, refWork.args);

  Workload interpWork = kernel->buildWorkload(config);
  interp::Interpreter interp(*interpWork.memory);
  const auto result = interp.run(*fn, interpWork.args);

  EXPECT_EQ(result.returnValue, refReturn);
  EXPECT_EQ(interpWork.memory->raw(), refWork.memory->raw());
}

TEST_P(KernelTest, PartitionShapeMatchesPaper) {
  const Kernel* kernel = GetParam();
  const driver::CompiledAccelerator accel =
      driver::compileKernel(*kernel, driver::Flow::CgpaP1,
                            driver::CompileOptions{});
  EXPECT_EQ(accel.shape, kernel->expectedShape())
      << accel.plan.describe();
  EXPECT_EQ(accel.pipelineModule.numWorkers, 4);
}

TEST_P(KernelTest, P2ShapeIsAllParallelWhereSupported) {
  const Kernel* kernel = GetParam();
  if (!kernel->supportsP2())
    GTEST_SKIP() << "P2 not applicable for " << kernel->name();
  const driver::CompiledAccelerator accel =
      driver::compileKernel(*kernel, driver::Flow::CgpaP2,
                            driver::CompileOptions{});
  EXPECT_EQ(accel.shape, "P") << accel.plan.describe();
  // Replicated data-level parallelism needs no FIFO communication.
  EXPECT_TRUE(accel.pipelineModule.channels.empty());
}

TEST_P(KernelTest, FunctionalPipelineMatchesReference) {
  const Kernel* kernel = GetParam();
  WorkloadConfig config;
  Workload refWork = kernel->buildWorkload(config);
  const std::uint64_t refReturn =
      kernel->runReference(*refWork.memory, refWork.args);

  const driver::CompiledAccelerator accel =
      driver::compileKernel(*kernel, driver::Flow::CgpaP1,
                            driver::CompileOptions{});
  Workload work = kernel->buildWorkload(config);
  const pipeline::FunctionalRunResult result =
      pipeline::runPipelineFunctional(accel.pipelineModule, *work.memory,
                                      work.args);
  EXPECT_EQ(result.wrapperReturn, refReturn);
  EXPECT_EQ(work.memory->raw(), refWork.memory->raw());
}

TEST_P(KernelTest, CycleSimulationMatchesReferenceAllFlows) {
  const Kernel* kernel = GetParam();
  driver::EvaluationOptions options;
  options.runP2 = true;
  const driver::KernelEvaluation eval =
      driver::evaluateKernel(*kernel, options);

  EXPECT_TRUE(eval.mips.correct) << "MIPS functional mismatch";
  EXPECT_TRUE(eval.legup.correct) << "Legup sim functional mismatch";
  EXPECT_TRUE(eval.cgpaP1.correct) << "CGPA P1 sim functional mismatch";
  if (eval.cgpaP2)
    EXPECT_TRUE(eval.cgpaP2->correct) << "CGPA P2 sim functional mismatch";

  // Performance shape (paper Figure 4): accelerators beat the core, and
  // the pipelined design beats the sequential accelerator.
  EXPECT_LT(eval.legup.cycles, eval.mips.cycles);
  EXPECT_LT(eval.cgpaP1.cycles, eval.legup.cycles);
  EXPECT_GT(eval.cgpaOverLegup(), 1.5) << "pipelining gain too small";
}

TEST_P(KernelTest, AreaAndPowerShape) {
  const Kernel* kernel = GetParam();
  driver::EvaluationOptions options;
  const driver::KernelEvaluation eval =
      driver::evaluateKernel(*kernel, options);
  // Paper Table 3: CGPA uses roughly 4x the ALUTs (4 workers), at higher
  // power; energy overhead stays well under the worker count.
  EXPECT_GT(eval.cgpaP1.aluts, 2 * eval.legup.aluts);
  EXPECT_LT(eval.cgpaP1.aluts, 8 * eval.legup.aluts);
  EXPECT_GT(eval.cgpaP1.powerMw, eval.legup.powerMw);
  EXPECT_GT(eval.cgpaP1.energyEfficiency, 0.0);
  EXPECT_GT(eval.legup.energyEfficiency, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTest,
                         ::testing::ValuesIn(allKernels()),
                         [](const ::testing::TestParamInfo<const Kernel*>& info) {
                           std::string name = info.param->name();
                           for (char& c : name)
                             if (c == '-')
                               c = '_';
                           return name;
                         });

TEST(KernelRegistry, FiveKernelsInTableOrder) {
  const auto kernels = allKernels();
  ASSERT_EQ(kernels.size(), 5u);
  EXPECT_EQ(kernels[0]->name(), "kmeans");
  EXPECT_EQ(kernels[1]->name(), "hash-indexing");
  EXPECT_EQ(kernels[2]->name(), "ks");
  EXPECT_EQ(kernels[3]->name(), "em3d");
  EXPECT_EQ(kernels[4]->name(), "1d-gaussblur");
  EXPECT_EQ(kernelByName("em3d"), kernels[3]);
  EXPECT_EQ(kernelByName("nope"), nullptr);
}

TEST(KernelWorkloads, DeterministicAcrossBuilds) {
  const Kernel* kernel = kernelByName("em3d");
  Workload a = kernel->buildWorkload(WorkloadConfig{});
  Workload b = kernel->buildWorkload(WorkloadConfig{});
  EXPECT_EQ(a.args, b.args);
  EXPECT_EQ(a.memory->raw(), b.memory->raw());
  WorkloadConfig other;
  other.seed = 7;
  Workload c = kernel->buildWorkload(other);
  EXPECT_NE(a.memory->raw(), c.memory->raw());
}

} // namespace
} // namespace cgpa::kernels
