// Paper Appendix A case studies, asserted against the compiler's actual
// decisions: the K-means section assignment (Figure A.2) and the 1D row
// Gaussian blur replicable-section handling (Figure A.4), plus the em3d
// running example of Section 2.
//
// These tests pin the *mechanism*, not just the final shape: which
// instructions land in which stage, what gets replicated, and what flows
// through which kind of FIFO channel.
#include "cgpa/driver.hpp"

#include <gtest/gtest.h>

namespace cgpa {
namespace {

/// Find the (unique) instruction with result name `name` anywhere in the
/// pre-transform loop, via the PDG node list.
const ir::Instruction* findNamed(const driver::CompiledAccelerator& accel,
                                 const std::string& name) {
  for (int i = 0; i < accel.pdg->numNodes(); ++i)
    if (accel.pdg->node(i)->name() == name)
      return accel.pdg->node(i);
  return nullptr;
}

int stageOfNamed(const driver::CompiledAccelerator& accel,
                 const std::string& name) {
  const ir::Instruction* inst = findNamed(accel, name);
  EXPECT_NE(inst, nullptr) << name;
  return inst == nullptr ? -2 : accel.plan.stageOf(inst);
}

bool replicatedNamed(const driver::CompiledAccelerator& accel,
                     const std::string& name) {
  const ir::Instruction* inst = findNamed(accel, name);
  EXPECT_NE(inst, nullptr) << name;
  return inst != nullptr && accel.plan.isReplicated(inst);
}

const pipeline::ChannelInfo* channelNamed(
    const driver::CompiledAccelerator& accel, const std::string& valueName) {
  for (const pipeline::ChannelInfo& channel : accel.pipelineModule.channels)
    if (channel.valueName == valueName)
      return &channel;
  return nullptr;
}

TEST(CaseStudyEm3d, Section2MotivatingExample) {
  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernels::kernelByName("em3d"), driver::Flow::CgpaP1,
      driver::CompileOptions{});
  ASSERT_EQ(accel.shape, "S-P");

  // The traversal (node phi + next load + exit compare) is the sequential
  // section — one SCC, replicable class but heavyweight (contains a load),
  // so it is NOT duplicated (paper Section 3.3's heuristic).
  const ir::Instruction* node = findNamed(accel, "node");
  const ir::Instruction* next = findNamed(accel, "next");
  const ir::Instruction* live = findNamed(accel, "live");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(accel.sccs->sccOf(node), accel.sccs->sccOf(next));
  EXPECT_EQ(accel.sccs->sccOf(node), accel.sccs->sccOf(live));
  EXPECT_EQ(accel.plan.stageOf(node), 0);
  EXPECT_FALSE(accel.plan.isReplicated(node));
  const auto& traversalScc =
      accel.sccs->sccs()[static_cast<std::size_t>(accel.sccs->sccOf(node))];
  EXPECT_EQ(traversalScc.cls, analysis::SccClass::Replicable);
  EXPECT_FALSE(traversalScc.lightweight());

  // The update (inner reduction) is the parallel section.
  EXPECT_EQ(stageOfNamed(accel, "acc2"), 1);
  EXPECT_EQ(stageOfNamed(accel, "product"), 1);
  EXPECT_EQ(stageOfNamed(accel, "from.value"), 1);

  // Communication: the node pointer goes to the workers round-robin; the
  // loop-exit condition is broadcast (paper Fig. 1e).
  const pipeline::ChannelInfo* nodeChannel = channelNamed(accel, "node");
  ASSERT_NE(nodeChannel, nullptr);
  EXPECT_FALSE(nodeChannel->broadcast);
  EXPECT_EQ(nodeChannel->lanes, 4);
  const pipeline::ChannelInfo* liveChannel = channelNamed(accel, "live");
  ASSERT_NE(liveChannel, nullptr);
  EXPECT_TRUE(liveChannel->broadcast);
}

TEST(CaseStudyKmeans, AppendixA1SectionAssignment) {
  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernels::kernelByName("kmeans"), driver::Flow::CgpaP1,
      driver::CompileOptions{});
  ASSERT_EQ(accel.shape, "P-S");

  // R: induction variable calculation is replicated in every worker
  // ("each worker has its own induction variable calculation").
  EXPECT_TRUE(replicatedNamed(accel, "i"));
  EXPECT_TRUE(replicatedNamed(accel, "i2"));

  // P: findNearestPoint (distance scan + argmin) is the parallel stage 0.
  EXPECT_EQ(stageOfNamed(accel, "dist2"), 0);
  EXPECT_EQ(stageOfNamed(accel, "best2"), 0);
  EXPECT_EQ(stageOfNamed(accel, "sq"), 0);

  // S: the loop-carried update chains — delta accumulation,
  // new_centers_len and new_centers read-modify-writes — form the
  // sequential stage 1. (Our partition is finer-grained than the paper's
  // prose: pure address arithmetic and reads like membership[i] stay with
  // the workers; only the genuinely carried chains serialize.)
  EXPECT_EQ(stageOfNamed(accel, "delta2"), 1);
  EXPECT_EQ(stageOfNamed(accel, "len2"), 1);
  EXPECT_EQ(stageOfNamed(accel, "ncv2"), 1);
  // The delta reduction is side-effect free (replicable class) but cannot
  // be duplicated — its input comes from the parallel stage — so it was
  // demoted to the sequential stage (DESIGN.md note 2).
  const ir::Instruction* delta2 = findNamed(accel, "delta2");
  EXPECT_EQ(accel.sccs->sccs()[static_cast<std::size_t>(
                                   accel.sccs->sccOf(delta2))]
                .cls,
            analysis::SccClass::Replicable);

  // "One 4-channel FIFO buffer ... fetching values from the buffers on a
  // round-robin basis": every parallel->sequential channel has one lane
  // per worker and no broadcasting.
  ASSERT_FALSE(accel.pipelineModule.channels.empty());
  for (const pipeline::ChannelInfo& channel :
       accel.pipelineModule.channels) {
    EXPECT_EQ(channel.producerStage, 0);
    EXPECT_EQ(channel.consumerStage, 1);
    EXPECT_EQ(channel.lanes, 4);
    EXPECT_FALSE(channel.broadcast);
  }

  // delta is the loop live-out returned to the CPU.
  ASSERT_EQ(accel.pipelineModule.liveouts.size(), 1u);
  EXPECT_EQ(accel.pipelineModule.liveouts[0].ownerStage, 1);
}

TEST(CaseStudyGaussblur, AppendixA2ReplicableSections) {
  const driver::CompiledAccelerator p1 = driver::compileKernel(
      *kernels::kernelByName("1d-gaussblur"), driver::Flow::CgpaP1,
      driver::CompileOptions{});
  ASSERT_EQ(p1.shape, "S-P");

  // R1 (column induction) is lightweight: replicated into both stages.
  EXPECT_TRUE(replicatedNamed(p1, "j"));
  EXPECT_TRUE(replicatedNamed(p1, "j2"));

  // R2+R3 (shift window + image fetch — fused in our SCC formation, see
  // DESIGN.md note 1): one replicable-heavy SCC placed sequentially under
  // P1.
  const ir::Instruction* w0 = findNamed(p1, "w0");
  const ir::Instruction* w4 = findNamed(p1, "w4");
  const ir::Instruction* fetch = findNamed(p1, "new.sample");
  ASSERT_NE(w0, nullptr);
  EXPECT_EQ(p1.sccs->sccOf(w0), p1.sccs->sccOf(w4));
  EXPECT_EQ(p1.sccs->sccOf(w0), p1.sccs->sccOf(fetch));
  EXPECT_EQ(p1.plan.stageOf(w0), 0);
  EXPECT_FALSE(p1.plan.isReplicated(w0));

  // P: the weighted reduction and output store are the parallel stage.
  EXPECT_EQ(stageOfNamed(p1, "s4"), 1);
  EXPECT_EQ(stageOfNamed(p1, "m0"), 1);

  // Under P2 the whole window section is duplicated into the workers and
  // all FIFO communication disappears (replicated data-level parallelism).
  const driver::CompiledAccelerator p2 = driver::compileKernel(
      *kernels::kernelByName("1d-gaussblur"), driver::Flow::CgpaP2,
      driver::CompileOptions{});
  EXPECT_EQ(p2.shape, "P");
  EXPECT_TRUE(replicatedNamed(p2, "w0"));
  EXPECT_TRUE(replicatedNamed(p2, "new.sample"));
  EXPECT_TRUE(p2.pipelineModule.channels.empty());
}

TEST(CaseStudyHash, WalkerStructure) {
  const driver::CompiledAccelerator accel = driver::compileKernel(
      *kernels::kernelByName("hash-indexing"), driver::Flow::CgpaP1,
      driver::CompileOptions{});
  ASSERT_EQ(accel.shape, "S-P-S");
  // Stage 0: record-list walk; stage 1: hash mixing; stage 2: bucket
  // insertion (loop-carried through the table).
  EXPECT_EQ(stageOfNamed(accel, "node"), 0);
  EXPECT_EQ(stageOfNamed(accel, "h3"), 1);
  EXPECT_EQ(stageOfNamed(accel, "old.head"), 2);
  const ir::Instruction* oldHead = findNamed(accel, "old.head");
  EXPECT_EQ(accel.sccs->sccs()[static_cast<std::size_t>(
                                   accel.sccs->sccOf(oldHead))]
                .cls,
            analysis::SccClass::Sequential);
}

} // namespace
} // namespace cgpa
