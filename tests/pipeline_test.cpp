#include "analysis/alias.hpp"
#include "analysis/control_dep.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/pdg.hpp"
#include "analysis/scc.hpp"
#include "interp/eval.hpp"
#include "interp/interpreter.hpp"
#include "interp/memory.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "pipeline/functional_exec.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/transform.hpp"

#include <gtest/gtest.h>

namespace cgpa::pipeline {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Instruction;
using ir::Type;

/// All analyses needed to partition a function's single top-level loop.
struct Compiled {
  std::unique_ptr<ir::Module> module;
  ir::Function* fn = nullptr;
  std::unique_ptr<analysis::DominatorTree> dom;
  std::unique_ptr<analysis::DominatorTree> postDom;
  std::unique_ptr<analysis::LoopInfo> loops;
  std::unique_ptr<analysis::AliasAnalysis> alias;
  std::unique_ptr<analysis::ControlDependence> cd;
  std::unique_ptr<analysis::Pdg> pdg;
  std::unique_ptr<analysis::SccGraph> sccs;
  analysis::Loop* loop = nullptr;

  void analyze() {
    dom = std::make_unique<analysis::DominatorTree>(*fn);
    postDom = std::make_unique<analysis::DominatorTree>(*fn, true);
    loops = std::make_unique<analysis::LoopInfo>(*fn, *dom);
    alias = std::make_unique<analysis::AliasAnalysis>(*fn, *module, *loops);
    cd = std::make_unique<analysis::ControlDependence>(*fn, *postDom);
    loop = loops->topLevelLoops().front();
    pdg = std::make_unique<analysis::Pdg>(*fn, *loop, *alias, *cd);
    sccs = std::make_unique<analysis::SccGraph>(
        *pdg, [](const Instruction*) { return 1.0; });
  }
};

/// em3d-mini: for (n = head; n; n = n->next) n->value *= 0.9;
/// Node layout: {f64 value @0, ptr next @8}, elem 16.
Compiled buildListUpdate() {
  Compiled c;
  c.module = std::make_unique<ir::Module>("em3d_mini");
  ir::Region* region =
      c.module->addRegion("nodes", ir::RegionShape::AcyclicList, 16);
  region->nextOffset = 8;

  c.fn = c.module->addFunction("kernel", Type::I32);
  ir::Argument* head = c.fn->addArgument(Type::Ptr, "head");
  head->setRegionId(region->id);

  auto* entry = c.fn->addBlock("entry");
  auto* header = c.fn->addBlock("header");
  auto* body = c.fn->addBlock("body");
  auto* exit = c.fn->addBlock("exit");
  IRBuilder b(c.module.get());
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* n = b.phi(Type::Ptr, "n");
  b.condBr(b.icmp(CmpPred::NE, n, b.nullPtr(), "live"), body, exit);
  b.setInsertPoint(body);
  auto* value = b.load(Type::F64, n, "value");
  auto* scaled = b.fmul(value, b.f64(0.9), "scaled");
  b.store(scaled, n);
  auto* nextAddr = b.gep(n, nullptr, 0, 8, "nextAddr");
  auto* next = b.load(Type::Ptr, nextAddr, "next");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret(b.i32(0));
  n->addIncoming(head, entry);
  n->addIncoming(next, body);
  EXPECT_EQ(ir::verifyModule(*c.module), "");
  c.analyze();
  return c;
}

/// kmeans-mini: parallel square, sequential reduction with live-out.
///   for (i = 0; i < len; ++i) { v = pts[i]; sq = v * v; sum += sq; }
///   return (i32)sum;
Compiled buildSquareReduce() {
  Compiled c;
  c.module = std::make_unique<ir::Module>("kmeans_mini");
  ir::Region* pts = c.module->addRegion("pts", ir::RegionShape::Array, 8);
  pts->readOnly = true;

  c.fn = c.module->addFunction("kernel", Type::F64);
  ir::Argument* ptsArg = c.fn->addArgument(Type::Ptr, "pts");
  ptsArg->setRegionId(pts->id);
  ir::Argument* len = c.fn->addArgument(Type::I32, "len");

  auto* entry = c.fn->addBlock("entry");
  auto* header = c.fn->addBlock("header");
  auto* body = c.fn->addBlock("body");
  auto* exit = c.fn->addBlock("exit");
  IRBuilder b(c.module.get());
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* i = b.phi(Type::I32, "i");
  auto* sum = b.phi(Type::F64, "sum");
  b.condBr(b.icmp(CmpPred::SLT, i, len, "more"), body, exit);
  b.setInsertPoint(body);
  auto* addr = b.gep(ptsArg, i, 8, 0, "addr");
  auto* v = b.load(Type::F64, addr, "v");
  auto* sq = b.fmul(v, v, "sq");
  auto* sum2 = b.fadd(sum, sq, "sum2");
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret(sum);
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, body);
  sum->addIncoming(b.f64(0.0), entry);
  sum->addIncoming(sum2, body);
  EXPECT_EQ(ir::verifyModule(*c.module), "");
  c.analyze();
  return c;
}

std::uint64_t layoutList(interp::Memory& memory, int count) {
  std::uint64_t head = 0;
  for (int i = count - 1; i >= 0; --i) {
    const std::uint64_t node = memory.allocate(16, 8);
    memory.writeF64(node, 1.0 + i);
    memory.writePtr(node + 8, head);
    head = node;
  }
  return head;
}

TEST(Partition, ListUpdateIsSP) {
  Compiled c = buildListUpdate();
  PartitionOptions options;
  const PipelinePlan plan = partitionLoop(*c.sccs, *c.loop, options);
  EXPECT_EQ(plan.shapeString(), "S-P");
  EXPECT_TRUE(plan.pipelined());
  EXPECT_EQ(plan.numWorkers, 4);
  EXPECT_TRUE(plan.replicatedSccs.empty()); // Traversal is heavyweight.
}

TEST(Partition, ListUpdateForceParallelIsP) {
  Compiled c = buildListUpdate();
  PartitionOptions options;
  options.policy = ReplicablePolicy::ForceParallel;
  const PipelinePlan plan = partitionLoop(*c.sccs, *c.loop, options);
  EXPECT_EQ(plan.shapeString(), "P");
  EXPECT_FALSE(plan.replicatedSccs.empty()); // Traversal replicated.
}

TEST(Partition, SquareReduceIsPS) {
  Compiled c = buildSquareReduce();
  PartitionOptions options;
  const PipelinePlan plan = partitionLoop(*c.sccs, *c.loop, options);
  EXPECT_EQ(plan.shapeString(), "P-S");
  // The induction SCC is replicated; the sum reduction must have been
  // demoted to the sequential stage (its input comes from the parallel
  // stage and cannot be broadcast).
  EXPECT_FALSE(plan.replicatedSccs.empty());
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_TRUE(plan.stages[0].parallel);
  EXPECT_FALSE(plan.stages[1].sccIds.empty());
}

TEST(Partition, SequentialPlanShape) {
  Compiled c = buildListUpdate();
  const PipelinePlan plan = sequentialPlan(*c.sccs, *c.loop);
  EXPECT_EQ(plan.shapeString(), "S");
  EXPECT_FALSE(plan.pipelined());
}

/// Degenerate case: the whole loop is one SCC (an index chase where the
/// next index is loaded from the current one, and the exit tests it). The
/// loop is a single block (header == latch) so even the branch belongs to
/// the chase cycle.
///   x = seed; do { x = A[x & 63]; } while (x != 0);
Compiled buildIndexChase() {
  Compiled c;
  c.module = std::make_unique<ir::Module>("chase");
  ir::Region* region = c.module->addRegion("A", ir::RegionShape::Array, 4);
  region->readOnly = true;
  c.fn = c.module->addFunction("kernel", Type::I32);
  ir::Argument* a = c.fn->addArgument(Type::Ptr, "A");
  a->setRegionId(region->id);
  ir::Argument* seed = c.fn->addArgument(Type::I32, "seed");
  auto* entry = c.fn->addBlock("entry");
  auto* header = c.fn->addBlock("header");
  auto* exit = c.fn->addBlock("exit");
  IRBuilder b(c.module.get());
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* x = b.phi(Type::I32, "x");
  auto* masked = b.bitAnd(x, b.i32(63), "masked");
  auto* addr = b.gep(a, masked, 4, 0, "addr");
  auto* x2 = b.load(Type::I32, addr, "x2");
  b.condBr(b.icmp(CmpPred::NE, x2, b.i32(0), "live"), header, exit);
  b.setInsertPoint(exit);
  b.ret(x2);
  x->addIncoming(seed, entry);
  x->addIncoming(x2, header);
  EXPECT_EQ(ir::verifyModule(*c.module), "");
  c.analyze();
  return c;
}

TEST(Partition, SingleSccLoopIsOneSequentialStage) {
  Compiled c = buildIndexChase();
  ASSERT_EQ(c.sccs->sccs().size(), 1u);
  for (const ReplicablePolicy policy :
       {ReplicablePolicy::Heuristic, ReplicablePolicy::ForceParallel}) {
    PartitionOptions options;
    options.policy = policy;
    const PipelinePlan plan = partitionLoop(*c.sccs, *c.loop, options);
    EXPECT_EQ(plan.shapeString(), "S");
    EXPECT_FALSE(plan.pipelined());
    EXPECT_EQ(plan.parallelStageIndex(), -1);
    EXPECT_TRUE(plan.replicatedSccs.empty());
  }
}

/// All-sequential multi-SCC loop: the index chase feeds a memory
/// accumulation C[0] += x. Two non-trivial SCCs — the chase (loop-carried
/// through the loaded index, and carrying the branch since the loop is a
/// single block) and the accumulation (loop-carried memory dependence) —
/// and no parallel-class work at all.
Compiled buildChaseAccumulate() {
  Compiled c;
  c.module = std::make_unique<ir::Module>("chase_acc");
  ir::Region* regionA = c.module->addRegion("A", ir::RegionShape::Array, 4);
  regionA->readOnly = true;
  ir::Region* regionC = c.module->addRegion("C", ir::RegionShape::Array, 4);
  c.fn = c.module->addFunction("kernel", Type::I32);
  ir::Argument* a = c.fn->addArgument(Type::Ptr, "A");
  a->setRegionId(regionA->id);
  ir::Argument* cArg = c.fn->addArgument(Type::Ptr, "C");
  cArg->setRegionId(regionC->id);
  ir::Argument* seed = c.fn->addArgument(Type::I32, "seed");
  auto* entry = c.fn->addBlock("entry");
  auto* header = c.fn->addBlock("header");
  auto* exit = c.fn->addBlock("exit");
  IRBuilder b(c.module.get());
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* x = b.phi(Type::I32, "x");
  auto* cur = b.load(Type::I32, cArg, "cur");
  b.store(b.add(cur, x, "acc"), cArg);
  auto* masked = b.bitAnd(x, b.i32(63), "masked");
  auto* addr = b.gep(a, masked, 4, 0, "addr");
  auto* x2 = b.load(Type::I32, addr, "x2");
  b.condBr(b.icmp(CmpPred::NE, x2, b.i32(0), "live"), header, exit);
  b.setInsertPoint(exit);
  b.ret(x2);
  x->addIncoming(seed, entry);
  x->addIncoming(x2, header);
  EXPECT_EQ(ir::verifyModule(*c.module), "");
  c.analyze();
  return c;
}

TEST(Partition, AllSequentialLoopHasNoParallelStage) {
  Compiled c = buildChaseAccumulate();
  EXPECT_GE(c.sccs->sccs().size(), 2u);
  for (const ReplicablePolicy policy :
       {ReplicablePolicy::Heuristic, ReplicablePolicy::ForceParallel}) {
    PartitionOptions options;
    options.policy = policy;
    const PipelinePlan plan = partitionLoop(*c.sccs, *c.loop, options);
    EXPECT_EQ(plan.parallelStageIndex(), -1) << plan.describe();
    EXPECT_EQ(plan.shapeString().find('P'), std::string::npos)
        << plan.shapeString();
  }
}

/// Every replicable SCC heavyweight: list traversal (load) plus an LCG
/// chain (multiply) feeding a parallel store into the node payload.
///   for (n = head; n; n = n->next) { x = x * a + c; n->value = x; }
Compiled buildHeavyReplicables() {
  Compiled c;
  c.module = std::make_unique<ir::Module>("heavy_repl");
  ir::Region* region =
      c.module->addRegion("nodes", ir::RegionShape::AcyclicList, 16);
  region->nextOffset = 8;
  c.fn = c.module->addFunction("kernel", Type::I64);
  ir::Argument* head = c.fn->addArgument(Type::Ptr, "head");
  head->setRegionId(region->id);
  auto* entry = c.fn->addBlock("entry");
  auto* header = c.fn->addBlock("header");
  auto* body = c.fn->addBlock("body");
  auto* exit = c.fn->addBlock("exit");
  IRBuilder b(c.module.get());
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* n = b.phi(Type::Ptr, "n");
  auto* x = b.phi(Type::I64, "x");
  b.condBr(b.icmp(CmpPred::NE, n, b.nullPtr(), "live"), body, exit);
  b.setInsertPoint(body);
  auto* xm = b.mul(x, b.i64(6364136223846793005LL), "xm");
  auto* x2 = b.add(xm, b.i64(1442695040888963407LL), "x2");
  b.store(x2, n);
  auto* nextAddr = b.gep(n, nullptr, 0, 8, "nextAddr");
  auto* next = b.load(Type::Ptr, nextAddr, "next");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret(x);
  n->addIncoming(head, entry);
  n->addIncoming(next, body);
  x->addIncoming(b.i64(1), entry);
  x->addIncoming(x2, body);
  EXPECT_EQ(ir::verifyModule(*c.module), "");
  c.analyze();
  return c;
}

TEST(Partition, AllHeavyReplicablesStaySequentialUnderP1) {
  Compiled c = buildHeavyReplicables();
  const PipelinePlan plan =
      partitionLoop(*c.sccs, *c.loop, PartitionOptions{});
  // P1 refuses to replicate heavyweight sections: nothing is replicated,
  // both heavy chains sit in sequential stages, and the store still earns
  // a parallel stage fed over FIFOs.
  EXPECT_TRUE(plan.replicatedSccs.empty()) << plan.describe();
  EXPECT_GE(plan.parallelStageIndex(), 0) << plan.describe();
  EXPECT_NE(plan.shapeString().find('S'), std::string::npos);
}

TEST(Partition, AllHeavyReplicablesDuplicatedUnderP2) {
  Compiled c = buildHeavyReplicables();
  PartitionOptions options;
  options.policy = ReplicablePolicy::ForceParallel;
  const PipelinePlan plan = partitionLoop(*c.sccs, *c.loop, options);
  EXPECT_GE(plan.replicatedSccs.size(), 2u) << plan.describe();
  EXPECT_EQ(plan.shapeString(), "P");
}

TEST(Transform, ListUpdateTasksVerify) {
  Compiled c = buildListUpdate();
  PartitionOptions options;
  const PipelinePlan plan = partitionLoop(*c.sccs, *c.loop, options);
  const PipelineModule pm = transformLoop(*c.fn, plan, 0);
  ASSERT_EQ(pm.tasks.size(), 2u);
  EXPECT_FALSE(pm.tasks[0].parallel);
  EXPECT_TRUE(pm.tasks[1].parallel);
  const std::string err = ir::verifyModule(*c.module);
  EXPECT_EQ(err, "") << ir::printModule(*c.module);

  // Channels: node pointer (4-lane round robin) + exit condition
  // (broadcast).
  ASSERT_EQ(pm.channels.size(), 2u);
  int broadcasts = 0;
  for (const ChannelInfo& channel : pm.channels) {
    EXPECT_EQ(channel.lanes, 4);
    EXPECT_EQ(channel.producerStage, 0);
    EXPECT_EQ(channel.consumerStage, 1);
    broadcasts += channel.broadcast ? 1 : 0;
  }
  EXPECT_EQ(broadcasts, 1);
  EXPECT_TRUE(pm.liveouts.empty());
}

TEST(Transform, ListUpdateFunctionalMatchesGolden) {
  // Golden: plain interpretation of an identical untransformed kernel.
  Compiled golden = buildListUpdate();
  interp::Memory goldenMem(1 << 20);
  const std::uint64_t goldenHead = layoutList(goldenMem, 100);
  interp::Interpreter gi(goldenMem);
  const std::uint64_t goldenArgs[] = {goldenHead};
  gi.run(*golden.fn, goldenArgs);

  // Pipelined functional execution.
  Compiled c = buildListUpdate();
  const PipelinePlan plan =
      partitionLoop(*c.sccs, *c.loop, PartitionOptions{});
  const PipelineModule pm = transformLoop(*c.fn, plan, 0);
  ASSERT_EQ(ir::verifyModule(*c.module), "");
  interp::Memory mem(1 << 20);
  const std::uint64_t head = layoutList(mem, 100);
  ASSERT_EQ(head, goldenHead); // Identical layout.
  const std::uint64_t args[] = {head};
  runPipelineFunctional(pm, mem, args);

  // Every node's value must match.
  std::uint64_t g = goldenHead;
  std::uint64_t p = head;
  int count = 0;
  while (g != 0) {
    EXPECT_DOUBLE_EQ(mem.readF64(p), goldenMem.readF64(g)) << "node " << count;
    g = goldenMem.readPtr(g + 8);
    p = mem.readPtr(p + 8);
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(Transform, ForceParallelFunctionalMatchesGolden) {
  Compiled golden = buildListUpdate();
  interp::Memory goldenMem(1 << 20);
  const std::uint64_t goldenHead = layoutList(goldenMem, 37);
  interp::Interpreter gi(goldenMem);
  const std::uint64_t goldenArgs[] = {goldenHead};
  gi.run(*golden.fn, goldenArgs);

  Compiled c = buildListUpdate();
  PartitionOptions options;
  options.policy = ReplicablePolicy::ForceParallel;
  const PipelinePlan plan = partitionLoop(*c.sccs, *c.loop, options);
  const PipelineModule pm = transformLoop(*c.fn, plan, 0);
  ASSERT_EQ(ir::verifyModule(*c.module), "") << ir::printModule(*c.module);
  EXPECT_TRUE(pm.channels.empty()); // Fully replicated: no communication.

  interp::Memory mem(1 << 20);
  const std::uint64_t head = layoutList(mem, 37);
  const std::uint64_t args[] = {head};
  runPipelineFunctional(pm, mem, args);

  std::uint64_t g = goldenHead;
  std::uint64_t p = head;
  while (g != 0) {
    EXPECT_DOUBLE_EQ(mem.readF64(p), goldenMem.readF64(g));
    g = goldenMem.readPtr(g + 8);
    p = mem.readPtr(p + 8);
  }
}

TEST(Transform, SquareReduceLiveoutMatchesGolden) {
  // Golden result.
  Compiled golden = buildSquareReduce();
  interp::Memory goldenMem(1 << 20);
  const int len = 57;
  const std::uint64_t base = goldenMem.allocate(8 * len, 8);
  double expected = 0.0;
  for (int i = 0; i < len; ++i) {
    goldenMem.writeF64(base + 8 * static_cast<std::uint64_t>(i), 0.5 * i);
    expected += (0.5 * i) * (0.5 * i);
  }
  interp::Interpreter gi(goldenMem);
  const std::uint64_t goldenArgs[] = {base, static_cast<std::uint64_t>(len)};
  const auto goldenResult = gi.run(*golden.fn, goldenArgs);
  EXPECT_DOUBLE_EQ(interp::patternToDouble(Type::F64, goldenResult.returnValue),
                   expected);

  // Pipelined.
  Compiled c = buildSquareReduce();
  const PipelinePlan plan =
      partitionLoop(*c.sccs, *c.loop, PartitionOptions{});
  const PipelineModule pm = transformLoop(*c.fn, plan, 0);
  ASSERT_EQ(ir::verifyModule(*c.module), "") << ir::printModule(*c.module);
  ASSERT_EQ(pm.liveouts.size(), 1u);
  EXPECT_EQ(pm.liveouts[0].ownerStage, 1);

  interp::Memory mem(1 << 20);
  const std::uint64_t base2 = mem.allocate(8 * len, 8);
  ASSERT_EQ(base2, base);
  for (int i = 0; i < len; ++i)
    mem.writeF64(base2 + 8 * static_cast<std::uint64_t>(i), 0.5 * i);
  const std::uint64_t args[] = {base2, static_cast<std::uint64_t>(len)};
  const FunctionalRunResult result = runPipelineFunctional(pm, mem, args);
  EXPECT_DOUBLE_EQ(interp::patternToDouble(Type::F64, result.wrapperReturn),
                   expected);
}

TEST(Transform, WorkerCountVariants) {
  for (int workers : {1, 2, 4, 8}) {
    Compiled golden = buildListUpdate();
    interp::Memory goldenMem(1 << 20);
    const std::uint64_t goldenHead = layoutList(goldenMem, 23);
    interp::Interpreter gi(goldenMem);
    const std::uint64_t goldenArgs[] = {goldenHead};
    gi.run(*golden.fn, goldenArgs);

    Compiled c = buildListUpdate();
    PartitionOptions options;
    options.numWorkers = workers;
    const PipelinePlan plan = partitionLoop(*c.sccs, *c.loop, options);
    const PipelineModule pm = transformLoop(*c.fn, plan, 0);
    ASSERT_EQ(ir::verifyModule(*c.module), "") << "workers=" << workers;
    interp::Memory mem(1 << 20);
    const std::uint64_t head = layoutList(mem, 23);
    const std::uint64_t args[] = {head};
    runPipelineFunctional(pm, mem, args);
    std::uint64_t g = goldenHead;
    std::uint64_t p = head;
    while (g != 0) {
      EXPECT_DOUBLE_EQ(mem.readF64(p), goldenMem.readF64(g))
          << "workers=" << workers;
      g = goldenMem.readPtr(g + 8);
      p = mem.readPtr(p + 8);
    }
  }
}

TEST(Transform, EmptyListRuns) {
  Compiled c = buildListUpdate();
  const PipelinePlan plan =
      partitionLoop(*c.sccs, *c.loop, PartitionOptions{});
  const PipelineModule pm = transformLoop(*c.fn, plan, 0);
  interp::Memory mem(1 << 16);
  const std::uint64_t args[] = {0}; // Null head: zero iterations.
  const FunctionalRunResult result = runPipelineFunctional(pm, mem, args);
  EXPECT_EQ(result.wrapperReturn, 0u);
}

TEST(Partition, SinkPassMovesCheapProducers) {
  // for (i < len) { v = A[i] (i32); w = sitofp v; sq = w*w; sum += sq; }
  // The f64 chain feeding only the sequential reduction sinks into it when
  // that strictly reduces FIFO flits (f64 = 2 flits vs the i32 load's 1).
  Compiled c;
  c.module = std::make_unique<ir::Module>("sink");
  ir::Region* src = c.module->addRegion("A", ir::RegionShape::Array, 4);
  src->readOnly = true;
  ir::Region* dst = c.module->addRegion("B", ir::RegionShape::Array, 8);
  c.fn = c.module->addFunction("kernel", Type::F64);
  ir::Argument* a = c.fn->addArgument(Type::Ptr, "A");
  a->setRegionId(src->id);
  ir::Argument* out = c.fn->addArgument(Type::Ptr, "B");
  out->setRegionId(dst->id);
  ir::Argument* len = c.fn->addArgument(Type::I32, "len");
  auto* entry = c.fn->addBlock("entry");
  auto* header = c.fn->addBlock("header");
  auto* body = c.fn->addBlock("body");
  auto* exit = c.fn->addBlock("exit");
  IRBuilder b(c.module.get());
  b.setInsertPoint(entry);
  b.br(header);
  b.setInsertPoint(header);
  auto* i = b.phi(Type::I32, "i");
  auto* sum = b.phi(Type::F64, "sum");
  b.condBr(b.icmp(CmpPred::SLT, i, len, "more"), body, exit);
  b.setInsertPoint(body);
  auto* addr = b.gep(a, i, 4, 0, "addr");
  auto* v = b.load(Type::I32, addr, "v");
  auto* w = b.sitofp(v, Type::F64, "w");
  // Heavy parallel work (through its own conversion, so `w` feeds only
  // the sequential reduction) so the pipeline-balance check allows
  // sinking the cheap conversion.
  ir::Value* heavy = b.sitofp(v, Type::F64, "w.heavy");
  for (int h = 0; h < 12; ++h)
    heavy = b.fmul(heavy, heavy, "heavy" + std::to_string(h));
  auto* outAddr = b.gep(out, i, 8, 0, "out.addr");
  b.store(heavy, outAddr);
  auto* sum2 = b.fadd(sum, w, "sum2");
  auto* i2 = b.add(i, b.i32(1), "i2");
  b.br(header);
  b.setInsertPoint(exit);
  b.ret(sum);
  i->addIncoming(b.i32(0), entry);
  i->addIncoming(i2, body);
  sum->addIncoming(b.f64(0.0), entry);
  sum->addIncoming(sum2, body);
  ASSERT_EQ(ir::verifyModule(*c.module), "");
  c.analyze();

  const PipelinePlan plan =
      partitionLoop(*c.sccs, *c.loop, PartitionOptions{});
  ASSERT_EQ(plan.shapeString(), "P-S");
  // w (2 FIFO flits) feeds only the sequential sum: it sinks, so the only
  // cross-stage value is the 1-flit i32 load result.
  const Instruction* wInst = body->instruction(2);
  const Instruction* vInst = body->instruction(1);
  EXPECT_EQ(plan.stageOf(wInst), 1);
  EXPECT_EQ(plan.stageOf(vInst), 0); // The load itself stays parallel.

  // Disabling the sink pass keeps the conversion in the parallel stage.
  PartitionOptions noSink;
  noSink.sinkCheapProducers = false;
  const PipelinePlan plain = partitionLoop(*c.sccs, *c.loop, noSink);
  EXPECT_EQ(plain.stageOf(wInst), plain.parallelStageIndex());
}

TEST(Transform, PlanDescribeMentionsShape) {
  Compiled c = buildListUpdate();
  const PipelinePlan plan =
      partitionLoop(*c.sccs, *c.loop, PartitionOptions{});
  const std::string text = plan.describe();
  EXPECT_NE(text.find("S-P"), std::string::npos);
  EXPECT_NE(text.find("parallel"), std::string::npos);
}

} // namespace
} // namespace cgpa::pipeline
