#include "cgpa/driver.hpp"
#include "cgpa/report.hpp"
#include "interp/memory.hpp"
#include "sim/fifo.hpp"

#include <gtest/gtest.h>

namespace cgpa::driver {
namespace {

TEST(Driver, FlowNames) {
  EXPECT_STREQ(flowName(Flow::Mips), "MIPS");
  EXPECT_STREQ(flowName(Flow::Legup), "Legup");
  EXPECT_STREQ(flowName(Flow::CgpaP1), "CGPA(P1)");
  EXPECT_STREQ(flowName(Flow::CgpaP2), "CGPA(P2)");
}

TEST(Driver, LegupFlowIsSingleSequentialWorker) {
  const kernels::Kernel* kernel = kernels::kernelByName("em3d");
  const CompiledAccelerator accel =
      compileKernel(*kernel, Flow::Legup, CompileOptions{});
  EXPECT_EQ(accel.shape, "S");
  ASSERT_EQ(accel.pipelineModule.tasks.size(), 1u);
  EXPECT_FALSE(accel.pipelineModule.tasks[0].parallel);
  EXPECT_TRUE(accel.pipelineModule.channels.empty());
  EXPECT_EQ(accel.pipelineModule.numWorkers, 1);
}

TEST(Driver, WorkerCountPropagates) {
  const kernels::Kernel* kernel = kernels::kernelByName("em3d");
  CompileOptions options;
  options.partition.numWorkers = 8;
  const CompiledAccelerator accel =
      compileKernel(*kernel, Flow::CgpaP1, options);
  EXPECT_EQ(accel.pipelineModule.numWorkers, 8);
  for (const pipeline::ChannelInfo& channel : accel.pipelineModule.channels)
    EXPECT_EQ(channel.lanes, 8);
}

TEST(Driver, ChannelsFlowForward) {
  // Structural invariant: every channel's producer stage strictly precedes
  // its consumer stage, and broadcasts only target the parallel stage.
  for (const kernels::Kernel* kernel : kernels::allKernels()) {
    const CompiledAccelerator accel =
        compileKernel(*kernel, Flow::CgpaP1, CompileOptions{});
    const int parallelStage = accel.plan.parallelStageIndex();
    for (const pipeline::ChannelInfo& channel :
         accel.pipelineModule.channels) {
      EXPECT_LT(channel.producerStage, channel.consumerStage)
          << kernel->name();
      if (channel.broadcast)
        EXPECT_EQ(channel.consumerStage, parallelStage) << kernel->name();
      EXPECT_GE(channel.lanes, 1);
    }
  }
}

TEST(Driver, EvaluationSpeedupArithmetic) {
  KernelEvaluation eval;
  eval.mips.cycles = 1000;
  eval.legup.cycles = 500;
  eval.cgpaP1.cycles = 125;
  EXPECT_DOUBLE_EQ(eval.speedupLegup(), 2.0);
  EXPECT_DOUBLE_EQ(eval.speedupCgpa(), 8.0);
  EXPECT_DOUBLE_EQ(eval.cgpaOverLegup(), 4.0);
}

TEST(Report, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(geomean({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Report, TablesContainStructure) {
  const kernels::Kernel* kernel = kernels::kernelByName("hash-indexing");
  EvaluationOptions options;
  const KernelEvaluation eval = evaluateKernel(*kernel, options);
  const std::vector<KernelEvaluation> evals = {eval};

  const std::string table2 = formatTable2(evals);
  EXPECT_NE(table2.find("hash-indexing"), std::string::npos);
  EXPECT_NE(table2.find("S-P-S"), std::string::npos);

  const std::string fig4 = formatFigure4(evals);
  EXPECT_NE(fig4.find("GeoMean"), std::string::npos);
  EXPECT_NE(fig4.find("x"), std::string::npos);

  const std::string table3 = formatTable3(evals);
  EXPECT_NE(table3.find("ALUT"), std::string::npos);
  EXPECT_NE(table3.find("CGPA(P1)"), std::string::npos);
}

/// Property sweep: correctness must hold for every workload seed/scale, not
/// just the default (different list shapes, degrees, and key streams).
struct SweepParam {
  const char* kernel;
  std::uint64_t seed;
};

class SeedSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SeedSweepTest, CycleSimCorrectAcrossSeeds) {
  const SweepParam param = GetParam();
  const kernels::Kernel* kernel = kernels::kernelByName(param.kernel);
  ASSERT_NE(kernel, nullptr);
  EvaluationOptions options;
  options.workload.seed = param.seed;
  options.compile.profileWorkload.seed = param.seed + 1000; // Train != test.
  const KernelEvaluation eval = evaluateKernel(*kernel, options);
  EXPECT_TRUE(eval.mips.correct);
  EXPECT_TRUE(eval.legup.correct);
  EXPECT_TRUE(eval.cgpaP1.correct);
  EXPECT_LT(eval.cgpaP1.cycles, eval.legup.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SeedSweepTest,
    ::testing::Values(SweepParam{"em3d", 7}, SweepParam{"em3d", 99},
                      SweepParam{"hash-indexing", 7},
                      SweepParam{"hash-indexing", 99}, SweepParam{"ks", 13},
                      SweepParam{"kmeans", 13},
                      SweepParam{"1d-gaussblur", 13}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = info.param.kernel;
      for (char& c : name)
        if (c == '-')
          c = '_';
      return name + "_seed" + std::to_string(info.param.seed);
    });

TEST(DeathTests, MemoryOutOfRangeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  interp::Memory memory(1 << 12);
  EXPECT_DEATH(memory.readI32(1 << 20), "out of range");
  EXPECT_DEATH(memory.readI32(0), "out of range"); // Null guard.
}

TEST(DeathTests, FifoProtocolViolationsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::FifoLane lane(2, 32);
  EXPECT_DEATH(lane.pop(), "underflow");
  lane.push(1, 1);
  lane.push(2, 1);
  EXPECT_DEATH(lane.push(3, 1), "overflow");
}

} // namespace
} // namespace cgpa::driver
