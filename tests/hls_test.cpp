#include "hls/area.hpp"
#include "hls/ops.hpp"
#include "hls/schedule.hpp"
#include "hls/sdc.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"

#include <gtest/gtest.h>

namespace cgpa::hls {
namespace {

using ir::CmpPred;
using ir::IRBuilder;
using ir::Instruction;
using ir::Opcode;
using ir::Type;

TEST(Sdc, SimpleChain) {
  SdcSystem sdc;
  const int a = sdc.addVar();
  const int b = sdc.addVar();
  const int c = sdc.addVar();
  sdc.addGe(b, a, 2);
  sdc.addGe(c, b, 3);
  ASSERT_TRUE(sdc.solve());
  EXPECT_EQ(sdc.valueOf(a), 0);
  EXPECT_EQ(sdc.valueOf(b), 2);
  EXPECT_EQ(sdc.valueOf(c), 5);
}

TEST(Sdc, EqualityAndLowerBound) {
  SdcSystem sdc;
  const int a = sdc.addVar();
  const int b = sdc.addVar();
  sdc.addLowerBound(a, 4);
  sdc.addEq(b, a, 0);
  ASSERT_TRUE(sdc.solve());
  EXPECT_EQ(sdc.valueOf(a), 4);
  EXPECT_EQ(sdc.valueOf(b), 4);
}

TEST(Sdc, InfeasiblePositiveCycle) {
  SdcSystem sdc;
  const int a = sdc.addVar();
  const int b = sdc.addVar();
  sdc.addGe(b, a, 1);
  sdc.addGe(a, b, 1);
  EXPECT_FALSE(sdc.solve());
}

TEST(Ops, TimingSanity) {
  EXPECT_EQ(opTiming(Opcode::Add, Type::I32).latency, 0);
  EXPECT_GT(opTiming(Opcode::FMul, Type::F64).latency, 3);
  EXPECT_GT(opTiming(Opcode::SDiv, Type::I32).latency, 8);
  EXPECT_EQ(opTiming(Opcode::Load, Type::F64).latency, 2);
  EXPECT_EQ(opTiming(Opcode::Phi, Type::I32).latency, 0);
}

TEST(Ops, AreaSanity) {
  EXPECT_GT(opAluts(Opcode::FDiv, Type::F64), opAluts(Opcode::FAdd, Type::F64));
  EXPECT_GT(opAluts(Opcode::FAdd, Type::F64), opAluts(Opcode::Add, Type::I32));
  EXPECT_EQ(opAluts(Opcode::Br, Type::Void), 0);
}

TEST(Ops, MipsCyclesSanity) {
  EXPECT_EQ(mipsCycles(Opcode::Add, Type::I32), 1);
  EXPECT_GT(mipsCycles(Opcode::FDiv, Type::F64), 10);
  EXPECT_GT(mipsCycles(Opcode::Mul, Type::I32), 1);
}

/// Block: two chained f64 multiplies and a store; checks latency spacing.
TEST(Schedule, FloatLatencyRespected) {
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::Void);
  ir::Argument* p = fn->addArgument(Type::Ptr, "p");
  ir::Argument* x = fn->addArgument(Type::F64, "x");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  auto* m1 = b.fmul(x, x, "m1");
  auto* m2 = b.fmul(m1, x, "m2");
  b.store(m2, p);
  b.ret();
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  const FunctionSchedule schedule = scheduleFunction(*fn, ScheduleOptions{});
  const int lat = opTiming(Opcode::FMul, Type::F64).latency;
  const Instruction* i1 = entry->instruction(0);
  const Instruction* i2 = entry->instruction(1);
  const Instruction* st = entry->instruction(2);
  EXPECT_GE(schedule.stateOf(i2) - schedule.stateOf(i1), lat);
  EXPECT_GE(schedule.stateOf(st) - schedule.stateOf(i2), lat);
}

TEST(Schedule, ChainingBudgetSplitsLongChains) {
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::I32);
  ir::Argument* x = fn->addArgument(Type::I32, "x");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  ir::Value* v = x;
  for (int i = 0; i < 8; ++i)
    v = b.add(v, x, "a" + std::to_string(i));
  b.ret(v);
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  ScheduleOptions options;
  options.chainBudget = 3;
  const FunctionSchedule schedule = scheduleFunction(*fn, options);
  // 8 chained adds with 1 delay unit each in a budget of 3: at least 3
  // states needed.
  const Instruction* last = entry->instruction(7);
  EXPECT_GE(schedule.stateOf(last), 2);

  // Without chaining limits everything can share state 0.
  options.enableChaining = false;
  const FunctionSchedule loose = scheduleFunction(*fn, options);
  EXPECT_EQ(loose.stateOf(last), 0);
}

TEST(Schedule, MemoryPortLimit) {
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::I32);
  ir::Argument* p = fn->addArgument(Type::Ptr, "p");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  auto* l1 = b.load(Type::I32, p, "l1");
  auto* q = b.gep(p, nullptr, 0, 4, "q");
  auto* l2 = b.load(Type::I32, q, "l2");
  auto* sum = b.add(l1, l2, "sum");
  b.ret(sum);
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  const FunctionSchedule schedule = scheduleFunction(*fn, ScheduleOptions{});
  const Instruction* i1 = entry->instruction(0);
  const Instruction* i2 = entry->instruction(2);
  EXPECT_NE(schedule.stateOf(i1), schedule.stateOf(i2));
}

TEST(Schedule, CommSeparatedFromMemory) {
  // Paper constraint (3): produce/consume never share a state with a
  // memory operation.
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::Void);
  ir::Argument* p = fn->addArgument(Type::Ptr, "p");
  ir::Argument* w = fn->addArgument(Type::I32, "w");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  auto* l1 = b.load(Type::I32, p, "l1");
  b.produce(0, w, l1); // Depends on the load, so naturally later.
  auto* got = b.consume(1, w, Type::I32, "got");
  b.store(got, p);
  b.ret();
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  const FunctionSchedule schedule = scheduleFunction(*fn, ScheduleOptions{});
  const auto& states = schedule.of(entry).states;
  for (const auto& state : states) {
    bool hasMem = false;
    bool hasComm = false;
    for (const Instruction* inst : state) {
      hasMem |= inst->isMemory();
      hasComm |= inst->opcode() == Opcode::Produce ||
                 inst->opcode() == Opcode::Consume;
    }
    EXPECT_FALSE(hasMem && hasComm);
  }
}

TEST(Schedule, LiveoutAlignedWithBranch) {
  // Paper constraint (4): store_liveout shares the exit branch's state.
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::Void);
  ir::Argument* x = fn->addArgument(Type::I32, "x");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  auto* y = b.add(x, x, "y");
  b.storeLiveout(0, 0, y);
  b.ret();
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  const FunctionSchedule schedule = scheduleFunction(*fn, ScheduleOptions{});
  const Instruction* lo = entry->instruction(1);
  const Instruction* ret = entry->instruction(2);
  EXPECT_EQ(schedule.stateOf(lo), schedule.stateOf(ret));
}

TEST(Schedule, ForkConstraints) {
  // Paper constraints (1) and (2): same-loop forks share a state, forks of
  // different loops are separated.
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::Void);
  ir::Argument* x = fn->addArgument(Type::I32, "x");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  b.parallelFork(0, 0, {x});
  b.parallelFork(0, 1, {x});
  b.parallelFork(1, 2, {x});
  b.parallelJoin(0);
  b.ret();
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  const FunctionSchedule schedule = scheduleFunction(*fn, ScheduleOptions{});
  const Instruction* f0 = entry->instruction(0);
  const Instruction* f1 = entry->instruction(1);
  const Instruction* f2 = entry->instruction(2);
  EXPECT_EQ(schedule.stateOf(f0), schedule.stateOf(f1));
  EXPECT_GT(schedule.stateOf(f2), schedule.stateOf(f1));
}

TEST(Area, WorkerAreaScalesWithOps) {
  ir::Module module("m");
  ir::Function* small = module.addFunction("small", Type::I32);
  {
    ir::Argument* x = small->addArgument(Type::I32, "x");
    IRBuilder b(&module);
    b.setInsertPoint(small->addBlock("entry"));
    b.ret(b.add(x, x, "y"));
  }
  ir::Function* big = module.addFunction("big", Type::F64);
  {
    ir::Argument* x = big->addArgument(Type::F64, "x");
    IRBuilder b(&module);
    b.setInsertPoint(big->addBlock("entry"));
    auto* d = b.fdiv(x, x, "d");
    auto* m = b.fmul(d, x, "m");
    b.ret(b.fadd(m, x, "s"));
  }
  const ScheduleOptions options;
  const AreaReport smallArea =
      estimateWorkerArea(*small, scheduleFunction(*small, options));
  const AreaReport bigArea =
      estimateWorkerArea(*big, scheduleFunction(*big, options));
  EXPECT_GT(bigArea.aluts, smallArea.aluts * 5);
  EXPECT_GT(smallArea.aluts, 0);
  EXPECT_GT(smallArea.registers, 0);
}

TEST(Area, FifoBramBits) {
  EXPECT_EQ(fifoBramBits(16, 4, 32), 16 * 4 * 32);
}

TEST(Area, UnitSharingReducesFpArea) {
  // Four sequentially-scheduled f64 multiplies: with sharing they map to
  // one unit (+mux); without, four instances.
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::F64);
  ir::Argument* x = fn->addArgument(Type::F64, "x");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  ir::Value* v = x;
  for (int i = 0; i < 4; ++i)
    v = b.fmul(v, x, "m" + std::to_string(i));
  b.ret(v);
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  const FunctionSchedule schedule = scheduleFunction(*fn, ScheduleOptions{});
  const AreaReport plain = estimateWorkerArea(*fn, schedule);
  AreaOptions sharing;
  sharing.shareFunctionalUnits = true;
  const AreaReport shared = estimateWorkerArea(*fn, schedule, sharing);
  EXPECT_LT(shared.aluts, plain.aluts);
  // Chained multiplies never share a state -> exactly one unit + 4 muxes.
  const int unitCost = opAluts(Opcode::FMul, Type::F64);
  EXPECT_EQ(plain.aluts - shared.aluts,
            3 * unitCost - 4 * sharing.muxAlutsPerSharedOp);
}

TEST(Area, SharingKeepsConcurrentUnitsSeparate) {
  // Two INDEPENDENT multiplies land in the same state: sharing cannot
  // merge them.
  ir::Module module("m");
  ir::Function* fn = module.addFunction("f", Type::I32);
  ir::Argument* x = fn->addArgument(Type::I32, "x");
  ir::Argument* y = fn->addArgument(Type::I32, "y");
  auto* entry = fn->addBlock("entry");
  IRBuilder b(&module);
  b.setInsertPoint(entry);
  auto* m1 = b.mul(x, x, "m1");
  auto* m2 = b.mul(y, y, "m2");
  b.ret(b.add(m1, m2, "s"));
  ASSERT_EQ(ir::verifyFunction(*fn), "");

  const FunctionSchedule schedule = scheduleFunction(*fn, ScheduleOptions{});
  ASSERT_EQ(schedule.stateOf(entry->instruction(0)),
            schedule.stateOf(entry->instruction(1)));
  AreaOptions sharing;
  sharing.shareFunctionalUnits = true;
  const AreaReport shared = estimateWorkerArea(*fn, schedule, sharing);
  const AreaReport plain = estimateWorkerArea(*fn, schedule);
  EXPECT_EQ(shared.aluts, plain.aluts); // 2 units either way, no mux.
}

} // namespace
} // namespace cgpa::hls
